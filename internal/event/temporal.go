package event

import (
	"time"

	"activerbac/internal/clock"
)

// Temporal Snoop operators: PLUS, APERIODIC (and cumulative A*), and
// PERIODIC (and cumulative P*). All scheduling goes through the
// detector's Clock, so simulated time drives these operators in tests
// and benchmarks exactly as wall time would in production.

// plusNode detects PLUS(e, delta): delta after each occurrence of e
// (paper Rule 2: force-close a file 2 hours after it was opened). In
// Recent mode a new child occurrence supersedes the pending timer; in
// the other modes every child occurrence fires its own detection.
type plusNode struct {
	baseNode
	child   node
	delta   time.Duration
	mode    Mode
	gen     uint64
	pending map[uint64]clock.Timer
}

func (n *plusNode) kind() string { return "PLUS" }

func (n *plusNode) process(_ node, occ *Occurrence, ex exec) {
	if n.pending == nil {
		n.pending = make(map[uint64]clock.Timer)
	}
	if n.mode == Recent {
		for g, t := range n.pending {
			t.Stop()
			delete(n.pending, g)
		}
	}
	n.gen++
	g := n.gen
	deadline := occ.End.Add(n.delta)
	det := ex.d
	n.pending[g] = det.clk.At(deadline, func() {
		// Timer callbacks fire off-lane; operator state belongs to the
		// global lane, so the detection step is posted there.
		det.global.post(nil, func(tex exec) { n.fire(g, occ, tex) })
	})
}

// fire runs on the drain goroutine when a PLUS deadline elapses.
func (n *plusNode) fire(g uint64, started *Occurrence, ex exec) {
	if _, ok := n.pending[g]; !ok {
		return // superseded or cancelled
	}
	delete(n.pending, g)
	now := ex.d.clk.Now()
	ex.d.deliver(ex, n, &Occurrence{
		Event:        n.nm,
		Start:        started.Start,
		End:          now,
		Params:       started.Params.Clone(),
		Constituents: []*Occurrence{started},
	})
}

// aperiodicWindow is one open APERIODIC span.
type aperiodicWindow struct {
	starter *Occurrence
	mids    []*Occurrence // buffered middles, cumulative variant only
}

// aperiodicNode detects APERIODIC(a, b, c): every occurrence of b that
// falls between an occurrence of a and the following occurrence of c
// (paper Rule 9's transaction-bounded activation). The cumulative
// variant (A*) buffers the b occurrences and emits once, at c.
type aperiodicNode struct {
	baseNode
	a, b, c    node
	mode       Mode
	cumulative bool
	windows    []*aperiodicWindow
}

func (n *aperiodicNode) kind() string {
	if n.cumulative {
		return "A*"
	}
	return "APERIODIC"
}

func (n *aperiodicNode) process(src node, occ *Occurrence, ex exec) {
	// Role priority for aliased children: middle, terminator, starter.
	if src == n.b {
		n.middle(occ, ex)
		if src != n.c && src != n.a {
			return
		}
	}
	if src == n.c {
		n.terminate(occ, ex)
		if src != n.a {
			return
		}
	}
	if src == n.a {
		n.start(occ)
	}
}

func (n *aperiodicNode) start(occ *Occurrence) {
	if n.mode == Recent {
		n.windows = n.windows[:0]
	}
	n.windows = append(n.windows, &aperiodicWindow{starter: occ})
}

// selected returns the windows a middle/terminator occurrence applies to
// under the node's mode.
func (n *aperiodicNode) selected(occ *Occurrence) []*aperiodicWindow {
	var eligible []*aperiodicWindow
	for _, w := range n.windows {
		if w.starter.End.Before(occ.Start) {
			eligible = append(eligible, w)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	switch n.mode {
	case Recent:
		return eligible[len(eligible)-1:]
	case Chronicle:
		return eligible[:1]
	default:
		return eligible
	}
}

func (n *aperiodicNode) middle(occ *Occurrence, ex exec) {
	for _, w := range n.selected(occ) {
		if n.cumulative {
			w.mids = append(w.mids, occ)
		} else {
			ex.d.deliver(ex, n, compose(n.nm, 0, w.starter, occ))
		}
	}
}

func (n *aperiodicNode) terminate(occ *Occurrence, ex exec) {
	closing := n.selected(occ)
	if len(closing) == 0 {
		return
	}
	isClosing := func(w *aperiodicWindow) bool {
		for _, c := range closing {
			if c == w {
				return true
			}
		}
		return false
	}
	keep := n.windows[:0]
	for _, w := range n.windows {
		if !isClosing(w) {
			keep = append(keep, w)
		}
	}
	n.windows = keep
	if n.cumulative {
		for _, w := range closing {
			if len(w.mids) == 0 {
				continue
			}
			parts := append([]*Occurrence{w.starter}, w.mids...)
			parts = append(parts, occ)
			ex.d.deliver(ex, n, compose(n.nm, 0, parts...))
		}
	}
}

// periodicWindow is one running PERIODIC span.
type periodicWindow struct {
	starter *Occurrence
	gen     uint64
	timer   clock.Timer
	ticks   int
	first   time.Time
}

// periodicNode detects PERIODIC(a, tau, c): every tau after an
// occurrence of a, until the following occurrence of c (paper: periodic
// monitoring and report generation). The cumulative variant (P*) counts
// the ticks silently and emits a single occurrence at c carrying the
// tick count.
type periodicNode struct {
	baseNode
	a, c       node
	tau        time.Duration
	mode       Mode
	cumulative bool
	gen        uint64
	windows    map[uint64]*periodicWindow
	order      []uint64
}

func (n *periodicNode) kind() string {
	if n.cumulative {
		return "P*"
	}
	return "PERIODIC"
}

func (n *periodicNode) process(src node, occ *Occurrence, ex exec) {
	if src == n.c {
		n.terminate(occ, ex)
		if src != n.a {
			return
		}
	}
	if src == n.a {
		n.start(occ, ex)
	}
}

func (n *periodicNode) start(occ *Occurrence, ex exec) {
	if n.windows == nil {
		n.windows = make(map[uint64]*periodicWindow)
	}
	if n.mode == Recent {
		for _, g := range n.order {
			if w, ok := n.windows[g]; ok {
				w.timer.Stop()
				delete(n.windows, g)
			}
		}
		n.order = n.order[:0]
	}
	n.gen++
	w := &periodicWindow{starter: occ, gen: n.gen, first: occ.End}
	n.windows[w.gen] = w
	n.order = append(n.order, w.gen)
	n.arm(w, occ.End.Add(n.tau), ex)
}

func (n *periodicNode) arm(w *periodicWindow, at time.Time, ex exec) {
	g := w.gen
	det := ex.d
	w.timer = det.clk.At(at, func() {
		det.global.post(nil, func(tex exec) { n.tick(g, at, tex) })
	})
}

// tick runs on the drain goroutine at each period boundary.
func (n *periodicNode) tick(g uint64, at time.Time, ex exec) {
	w, ok := n.windows[g]
	if !ok {
		return // window closed before the queued tick ran
	}
	w.ticks++
	n.arm(w, at.Add(n.tau), ex)
	if n.cumulative {
		return
	}
	params := w.starter.Params.Clone()
	if params == nil {
		params = Params{}
	}
	params["tick"] = w.ticks
	ex.d.deliver(ex, n, &Occurrence{
		Event:        n.nm,
		Start:        at,
		End:          at,
		Params:       params,
		Constituents: []*Occurrence{w.starter},
	})
}

func (n *periodicNode) terminate(occ *Occurrence, ex exec) {
	var closing []uint64
	for _, g := range n.order {
		w, ok := n.windows[g]
		if !ok {
			continue
		}
		if w.starter.End.Before(occ.Start) {
			closing = append(closing, g)
			if n.mode == Chronicle {
				break
			}
		}
	}
	if len(closing) == 0 {
		return
	}
	closed := make(map[uint64]bool, len(closing))
	for _, g := range closing {
		w := n.windows[g]
		w.timer.Stop()
		delete(n.windows, g)
		closed[g] = true
		if n.cumulative {
			params := w.starter.Params.Merge(occ.Params)
			if params == nil {
				params = Params{}
			}
			params["ticks"] = w.ticks
			ex.d.deliver(ex, n, &Occurrence{
				Event:        n.nm,
				Start:        w.starter.Start,
				End:          occ.End,
				Params:       params,
				Constituents: []*Occurrence{w.starter, occ},
			})
		}
	}
	keep := n.order[:0]
	for _, g := range n.order {
		if !closed[g] {
			keep = append(keep, g)
		}
	}
	n.order = keep
}
