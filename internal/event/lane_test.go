package event

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"activerbac/internal/clock"
)

var laneEpoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// TestSingleLaneHasNoScopeLanes pins the compatibility mode: the default
// detector is the classic single drain, scope keys notwithstanding.
func TestSingleLaneHasNoScopeLanes(t *testing.T) {
	d := New(clock.NewSim(laneEpoch))
	if d.Lanes() != 1 {
		t.Fatalf("Lanes() = %d, want 1", d.Lanes())
	}
	stats := d.LaneStats()
	if len(stats) != 1 || stats[0].Lane != "global" {
		t.Fatalf("LaneStats() = %+v, want just the global lane", stats)
	}
	d.MustPrimitive("e")
	var got string
	if _, err := d.SubscribeScoped("e", func(o *Occurrence) { got = o.Scope }); err != nil {
		t.Fatal(err)
	}
	if err := d.RaiseSyncScoped("e", nil, "s1"); err != nil {
		t.Fatal(err)
	}
	if got != "s1" {
		t.Fatalf("handler saw scope %q, want s1", got)
	}
	if stats := d.LaneStats(); stats[0].Processed == 0 {
		t.Fatalf("global lane idle after raise: %+v", stats)
	}
}

// TestScopeRoutingUsesScopeLanes checks that a scope-keyed occurrence of
// a fully scope-local event (no composite parents, only scoped
// subscribers) runs on a scope lane, not the global one.
func TestScopeRoutingUsesScopeLanes(t *testing.T) {
	d := New(clock.NewSim(laneEpoch), WithLanes(4))
	if got := len(d.LaneStats()); got != 5 {
		t.Fatalf("lane count = %d, want 5 (global + 4)", got)
	}
	d.MustPrimitive("e")
	var mu sync.Mutex
	seen := map[string]int{}
	if _, err := d.SubscribeScoped("e", func(o *Occurrence) {
		mu.Lock()
		seen[o.Scope]++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := d.RaiseSyncScoped("e", nil, fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 16 {
		t.Fatalf("saw %d scopes, want 16", len(seen))
	}
	stats := d.LaneStats()
	if stats[0].Processed != 0 {
		t.Fatalf("global lane processed %d items, want 0: %+v", stats[0].Processed, stats)
	}
	var scoped uint64
	for _, ls := range stats[1:] {
		scoped += ls.Processed
	}
	if scoped != 16 {
		t.Fatalf("scope lanes processed %d items, want 16: %+v", scoped, stats)
	}
}

// TestUnscopedSubscriberPinsGlobal: one plain Subscribe on the event
// forces every occurrence — scope-keyed or not — onto the global lane.
func TestUnscopedSubscriberPinsGlobal(t *testing.T) {
	d := New(clock.NewSim(laneEpoch), WithLanes(4))
	d.MustPrimitive("e")
	if _, err := d.SubscribeScoped("e", func(*Occurrence) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe("e", func(*Occurrence) {}); err != nil {
		t.Fatal(err)
	}
	if err := d.RaiseSyncScoped("e", nil, "s1"); err != nil {
		t.Fatal(err)
	}
	stats := d.LaneStats()
	if stats[0].Processed != 1 {
		t.Fatalf("global lane processed %d, want 1: %+v", stats[0].Processed, stats)
	}
	for _, ls := range stats[1:] {
		if ls.Processed != 0 {
			t.Fatalf("scope lane carried pinned event: %+v", stats)
		}
	}
}

// TestCompositeParentPinsGlobal: an event feeding a composite operator
// keeps global ordering even with only scoped subscribers.
func TestCompositeParentPinsGlobal(t *testing.T) {
	d := New(clock.NewSim(laneEpoch), WithLanes(4))
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	d.MustDefine("ab", MustParse("SEQ(a, b)"))
	if _, err := d.SubscribeScoped("a", func(*Occurrence) {}); err != nil {
		t.Fatal(err)
	}
	if err := d.RaiseSyncScoped("a", nil, "s1"); err != nil {
		t.Fatal(err)
	}
	if stats := d.LaneStats(); stats[0].Processed != 1 {
		t.Fatalf("global lane processed %d, want 1: %+v", stats[0].Processed, stats)
	}
}

// TestScopeAdvisorVeto: the rule-granularity oracle can pin an otherwise
// scope-local event to the global lane.
func TestScopeAdvisorVeto(t *testing.T) {
	d := New(clock.NewSim(laneEpoch), WithLanes(4))
	d.SetScopeAdvisor(func(string) bool { return false })
	d.MustPrimitive("e")
	if _, err := d.SubscribeScoped("e", func(*Occurrence) {}); err != nil {
		t.Fatal(err)
	}
	if err := d.RaiseSyncScoped("e", nil, "s1"); err != nil {
		t.Fatal(err)
	}
	if stats := d.LaneStats(); stats[0].Processed != 1 {
		t.Fatalf("advisor veto ignored: %+v", stats)
	}
}

// TestCrossLaneCascadeIsSynchronous: a handler on a scope lane cascades
// via RaiseFrom into an event pinned to the global lane; RaiseSyncScoped
// must not return before the cross-lane descendant ran.
func TestCrossLaneCascadeIsSynchronous(t *testing.T) {
	d := New(clock.NewSim(laneEpoch), WithLanes(4))
	d.MustPrimitive("e")
	d.MustPrimitive("f")
	var fRan bool // plain bool: -race verifies the happens-before edge
	if _, err := d.Subscribe("f", func(*Occurrence) { fRan = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SubscribeScoped("e", func(o *Occurrence) {
		if err := d.RaiseFrom(o, "f", nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.RaiseSyncScoped("e", nil, "s1"); err != nil {
		t.Fatal(err)
	}
	if !fRan {
		t.Fatal("RaiseSyncScoped returned before the cross-lane cascade completed")
	}
	stats := d.LaneStats()
	if stats[0].Processed == 0 {
		t.Fatalf("cascade did not reach the global lane: %+v", stats)
	}
	var scoped uint64
	for _, ls := range stats[1:] {
		scoped += ls.Processed
	}
	if scoped == 0 {
		t.Fatalf("request did not run on a scope lane: %+v", stats)
	}
}

// TestScopeLanesRunConcurrently drives many scopes from many goroutines.
// Each scope's handler mutates that scope's plain (unsynchronized)
// counter — under -race this fails if the router ever runs one scope's
// occurrences on two lanes at once or leaks another scope's work into
// the handler.
func TestScopeLanesRunConcurrently(t *testing.T) {
	const scopes, perScope = 32, 50
	d := New(clock.NewSim(laneEpoch), WithLanes(8))
	d.MustPrimitive("e")
	counts := make([]int, scopes) // index i owned by scope si's lane
	if _, err := d.SubscribeScoped("e", func(o *Occurrence) {
		counts[o.Params["i"].(int)]++
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < scopes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scope := fmt.Sprintf("s%d", i)
			for j := 0; j < perScope; j++ {
				if err := d.RaiseSyncScoped("e", Params{"i": i}, scope); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	d.Quiesce()
	for i, n := range counts {
		if n != perScope {
			t.Fatalf("scope %d handled %d occurrences, want %d", i, n, perScope)
		}
	}
	stats := d.LaneStats()
	for _, ls := range stats {
		if ls.Depth != 0 {
			t.Fatalf("lane %s not drained after Quiesce: %+v", ls.Lane, ls)
		}
	}
	if stats[0].Processed != 0 {
		t.Fatalf("scope traffic leaked to the global lane: %+v", stats)
	}
}

// TestQuiesceDrainsCrossLaneWork: handlers fire-and-forget into another
// lane; Quiesce must not return until that secondary work is done too.
func TestQuiesceDrainsCrossLaneWork(t *testing.T) {
	d := New(clock.NewSim(laneEpoch), WithLanes(4))
	d.MustPrimitive("e")
	d.MustPrimitive("g")
	var mu sync.Mutex
	var gRuns int
	if _, err := d.Subscribe("g", func(*Occurrence) {
		mu.Lock()
		gRuns++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SubscribeScoped("e", func(o *Occurrence) {
		_ = d.Raise("g", nil) // plain Raise: global lane, no cascade link
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := d.RaiseScoped("e", nil, fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	d.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if gRuns != 8 {
		t.Fatalf("after Quiesce, g ran %d times, want 8", gRuns)
	}
}
