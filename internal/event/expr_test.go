package event

import (
	"strings"
	"testing"
	"time"
)

func TestParseName(t *testing.T) {
	e, err := Parse("addActiveRole.R1")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := e.(NameExpr); !ok || string(n) != "addActiveRole.R1" {
		t.Fatalf("Parse = %#v", e)
	}
}

func TestParseOperators(t *testing.T) {
	tests := []struct {
		src  string
		want string // canonical form; "" means same as src
	}{
		{"SEQ(a, b)", ""},
		{"AND(a, b)", ""},
		{"OR(a, b, c)", ""},
		{"NOT(a, b, c)", ""},
		{"ANY(2, a, b, c)", ""},
		{"PLUS(open, 2h0m0s)", ""},
		{"APERIODIC(s, m, e)", ""},
		{"ASTAR(s, m, e)", ""},
		{"PERIODIC(s, 10m0s, e)", ""},
		{"PSTAR(s, 10m0s, e)", ""},
		{"SEQ@chronicle(a, b)", ""},
		{"APERIODIC@continuous(s, m, e)", ""},
		{"SEQ(OR(a, b), PLUS(c, 1m0s))", ""},
		// Non-canonical inputs normalize:
		{"SEQUENCE(a,b)", "SEQ(a, b)"},
		{"seq( a , b )", "SEQ(a, b)"},
		{"PLUS(open, 2h)", "PLUS(open, 2h0m0s)"},
		{"SEQ@recent(a, b)", "SEQ(a, b)"}, // recent is the default, elided
	}
	for _, tc := range tests {
		e, err := Parse(tc.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.src, err)
			continue
		}
		want := tc.want
		if want == "" {
			want = tc.src
		}
		if got := e.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.src, got, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	exprs := []Expr{
		Seq(NameExpr("a"), NameExpr("b")),
		And(NameExpr("a"), Or(NameExpr("b"), NameExpr("c"))),
		Not(NameExpr("a"), NameExpr("b"), NameExpr("c")),
		Any(2, NameExpr("a"), NameExpr("b"), NameExpr("c")),
		Plus(NameExpr("a"), 90*time.Second),
		Aperiodic(NameExpr("a"), NameExpr("b"), NameExpr("c")),
		AStar(NameExpr("a"), NameExpr("b"), NameExpr("c")),
		Periodic(NameExpr("a"), time.Hour, NameExpr("c")),
		PStar(NameExpr("a"), time.Hour, NameExpr("c")),
		WithMode(Seq(NameExpr("a"), NameExpr("b")), Cumulative),
	}
	for _, e := range exprs {
		src := e.String()
		back, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if back.String() != src {
			t.Errorf("round trip %q -> %q", src, back.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SEQ(a)",             // arity
		"SEQ(a, b, c)",       // arity
		"AND(a)",             // arity
		"OR(a)",              // arity
		"NOT(a, b)",          // arity
		"ANY(0, a)",          // threshold < 1
		"ANY(3, a, b)",       // threshold > args
		"ANY(x, a, b)",       // non-integer threshold
		"PLUS(a, bogus)",     // bad duration
		"PLUS(a, -5m)",       // negative duration
		"PERIODIC(a, 0s, b)", // zero period
		"SEQ(a, b",           // unclosed paren
		"SEQ(a b)",           // missing comma
		"SEQ(a, b) junk",     // trailing input
		"SEQ@bogus(a, b)",    // bad mode
		"SEQ(, b)",           // empty argument
	}
	for _, src := range bad {
		if e, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %v, want error", src, e)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("SEQ(a")
}

func TestOperatorNameAsEventName(t *testing.T) {
	// A bare word that happens to be an operator name is an event name
	// when not followed by '('.
	e, err := Parse("or")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := e.(NameExpr); !ok || string(n) != "or" {
		t.Fatalf("Parse(\"or\") = %#v", e)
	}
}

func TestDefineExpr(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	if err := d.DefineExpr("c", "SEQ(a, b)"); err != nil {
		t.Fatal(err)
	}
	got := collect(t, d, "c")
	raiseAt(d, sim, sec(1), "a", nil)
	raiseAt(d, sim, sec(2), "b", nil)
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if err := d.DefineExpr("bad", "SEQ(a"); err == nil {
		t.Fatal("DefineExpr accepted bad syntax")
	}
	if err := d.DefineExpr("dangling", "SEQ(a, nosuch)"); err == nil {
		t.Fatal("DefineExpr accepted undefined reference")
	}
}

func TestSharedSubexpressionNodes(t *testing.T) {
	// Two composites over the same primitive both detect.
	d, sim := newTestDetector()
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	d.MustDefine("c1", Seq(NameExpr("a"), NameExpr("b")))
	d.MustDefine("c2", And(NameExpr("a"), NameExpr("b")))
	g1 := collect(t, d, "c1")
	g2 := collect(t, d, "c2")
	raiseAt(d, sim, sec(1), "a", nil)
	raiseAt(d, sim, sec(2), "b", nil)
	if len(*g1) != 1 || len(*g2) != 1 {
		t.Fatalf("c1=%d c2=%d, want 1/1", len(*g1), len(*g2))
	}
}

func TestParseWhitespaceTolerance(t *testing.T) {
	e, err := Parse("  SEQ (  a ,\n  b )  ")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "SEQ(a, b)" {
		t.Fatalf("got %q", e.String())
	}
}

func TestCanonicalFormStable(t *testing.T) {
	src := "PERIODIC@cumulative(s, 10m0s, e)"
	e := MustParse(src)
	if !strings.Contains(e.String(), "@cumulative") {
		t.Fatalf("mode lost: %q", e.String())
	}
}
