package event

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"activerbac/internal/clock"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// newTestDetector returns a detector on a simulated clock plus the clock.
func newTestDetector() (*Detector, *clock.Sim) {
	sim := clock.NewSim(t0)
	return New(sim), sim
}

// collect subscribes to name and returns a pointer to the slice of
// detected occurrences.
func collect(t *testing.T, d *Detector, name string) *[]*Occurrence {
	t.Helper()
	var got []*Occurrence
	if _, err := d.Subscribe(name, func(o *Occurrence) { got = append(got, o) }); err != nil {
		t.Fatalf("Subscribe(%q): %v", name, err)
	}
	return &got
}

func TestDefinePrimitive(t *testing.T) {
	d, _ := newTestDetector()
	if err := d.DefinePrimitive("e1"); err != nil {
		t.Fatal(err)
	}
	if err := d.DefinePrimitive("e1"); err != nil {
		t.Fatalf("re-defining primitive should be idempotent: %v", err)
	}
	if err := d.DefinePrimitive(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if !d.Defined("e1") || d.Defined("nope") {
		t.Fatal("Defined() wrong")
	}
}

func TestDefineConflicts(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	if err := d.Define("comp", Seq(NameExpr("a"), NameExpr("b"))); err != nil {
		t.Fatal(err)
	}
	if err := d.DefinePrimitive("comp"); err == nil {
		t.Fatal("primitive over composite accepted")
	}
	if err := d.Define("comp", Or(NameExpr("a"), NameExpr("b"))); err == nil {
		t.Fatal("duplicate composite name accepted")
	}
	if err := d.Define("dangling", Seq(NameExpr("a"), NameExpr("zzz"))); err == nil {
		t.Fatal("undefined reference accepted")
	}
}

func TestRaiseErrors(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	d.MustDefine("c", Seq(NameExpr("a"), NameExpr("b")))
	if err := d.Raise("nope", nil); err == nil {
		t.Fatal("raising undefined event accepted")
	}
	if err := d.Raise("c", nil); err == nil {
		t.Fatal("raising composite event accepted")
	}
}

func TestRaiseDeliversToSubscriber(t *testing.T) {
	d, sim := newTestDetector()
	d.MustPrimitive("login")
	got := collect(t, d, "login")
	d.MustRaise("login", Params{"user": "bob"})
	if len(*got) != 1 {
		t.Fatalf("got %d occurrences, want 1", len(*got))
	}
	o := (*got)[0]
	if o.Event != "login" || o.Params["user"] != "bob" {
		t.Fatalf("occurrence %v", o)
	}
	if !o.Start.Equal(sim.Now()) || !o.End.Equal(sim.Now()) {
		t.Fatalf("primitive interval not a point at now: %v", o)
	}
}

func TestSubscribeUnsubscribe(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("e")
	n := 0
	id, err := d.Subscribe("e", func(*Occurrence) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe("zzz", func(*Occurrence) {}); err == nil {
		t.Fatal("subscribe to undefined event accepted")
	}
	d.MustRaise("e", nil)
	d.Unsubscribe("e", id)
	d.MustRaise("e", nil)
	if n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}
}

func TestHandlerOrderIsSubscriptionOrder(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("e")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := d.Subscribe("e", func(*Occurrence) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	d.MustRaise("e", nil)
	for i, v := range order {
		if v != i {
			t.Fatalf("handler order %v", order)
		}
	}
}

func TestCascadedRaiseFromHandler(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("first")
	d.MustPrimitive("second")
	var trace []string
	if _, err := d.Subscribe("first", func(*Occurrence) {
		trace = append(trace, "first")
		d.MustRaise("second", nil)
		trace = append(trace, "first-done")
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe("second", func(*Occurrence) { trace = append(trace, "second") }); err != nil {
		t.Fatal(err)
	}
	d.MustRaise("first", nil)
	want := []string{"first", "first-done", "second"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v (cascades must queue behind current propagation)", trace, want)
		}
	}
}

func TestHandlerMayDefineAndSubscribe(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("boot")
	d.MustPrimitive("later")
	n := 0
	if _, err := d.Subscribe("boot", func(*Occurrence) {
		if err := d.DefinePrimitive("dynamic"); err != nil {
			t.Errorf("Define from handler: %v", err)
		}
		if _, err := d.Subscribe("later", func(*Occurrence) { n++ }); err != nil {
			t.Errorf("Subscribe from handler: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	d.MustRaise("boot", nil)
	d.MustRaise("later", nil)
	if n != 1 {
		t.Fatalf("late subscription ran %d times, want 1", n)
	}
	if !d.Defined("dynamic") {
		t.Fatal("event defined from handler is missing")
	}
}

func TestDefer(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("e")
	var trace []string
	if _, err := d.Subscribe("e", func(*Occurrence) {
		d.Defer(func() { trace = append(trace, "deferred") })
		trace = append(trace, "handler")
	}); err != nil {
		t.Fatal(err)
	}
	d.MustRaise("e", nil)
	if len(trace) != 2 || trace[0] != "handler" || trace[1] != "deferred" {
		t.Fatalf("trace %v", trace)
	}
}

func TestSeqNumbersAreMonotonic(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("e")
	var seqs []uint64
	if _, err := d.Subscribe("e", func(o *Occurrence) { seqs = append(seqs, o.Seq) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.MustRaise("e", nil)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seq not monotonic: %v", seqs)
		}
	}
}

func TestStats(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("a")
	d.MustPrimitive("b")
	d.MustDefine("ab", Or(NameExpr("a"), NameExpr("b")))
	d.MustRaise("a", nil)
	d.MustRaise("b", nil)
	s := d.Stats()
	if s.Raised != 2 {
		t.Fatalf("Raised = %d, want 2", s.Raised)
	}
	if s.Detected != 4 { // 2 primitives + 2 composite ORs
		t.Fatalf("Detected = %d, want 4", s.Detected)
	}
	if s.Events != 3 {
		t.Fatalf("Events = %d, want 3", s.Events)
	}
}

func TestEventsSorted(t *testing.T) {
	d, _ := newTestDetector()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		d.MustPrimitive(n)
	}
	ev := d.Events()
	if len(ev) != 3 || ev[0] != "alpha" || ev[1] != "mid" || ev[2] != "zeta" {
		t.Fatalf("Events() = %v", ev)
	}
}

func TestConcurrentRaise(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("e")
	var mu sync.Mutex
	count := 0
	if _, err := d.Subscribe("e", func(*Occurrence) {
		mu.Lock()
		count++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.MustRaise("e", nil)
			}
		}()
	}
	wg.Wait()
	// Raises from other goroutines may still be queued behind the last
	// drainer; raise once more to flush (the queue drains fully on each
	// enqueue when not already draining).
	mu.Lock()
	got := count
	mu.Unlock()
	if got != 1600 {
		t.Fatalf("count = %d, want 1600", got)
	}
}

func TestAliasDefinition(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("raw")
	d.MustDefine("alias", NameExpr("raw"))
	got := collect(t, d, "alias")
	d.MustRaise("raw", Params{"k": 1})
	if len(*got) != 1 || (*got)[0].Event != "alias" || (*got)[0].Params["k"] != 1 {
		t.Fatalf("alias detection wrong: %v", *got)
	}
}

func TestParamsMergeAndString(t *testing.T) {
	p := Params{"a": 1, "b": "x"}
	q := Params{"b": "y", "c": 3}
	m := p.Merge(q)
	if m["a"] != 1 || m["b"] != "y" || m["c"] != 3 {
		t.Fatalf("Merge = %v", m)
	}
	if p["b"] != "x" {
		t.Fatal("Merge mutated receiver")
	}
	if s := m.String(); s != "{a=1, b=y, c=3}" {
		t.Fatalf("String = %q", s)
	}
	var nilP Params
	if nilP.Clone() != nil {
		t.Fatal("nil Clone not nil")
	}
	if got := nilP.Merge(q); got["c"] != 3 {
		t.Fatalf("nil Merge = %v", got)
	}
	if s := (Params{}).String(); s != "{}" {
		t.Fatalf("empty String = %q", s)
	}
}

func TestOccurrenceString(t *testing.T) {
	o := &Occurrence{Event: "e", Start: t0, End: t0, Params: Params{"u": "bob"}}
	if s := o.String(); s != "e@09:00:00{u=bob}" {
		t.Fatalf("point String = %q", s)
	}
	o2 := &Occurrence{Event: "e", Start: t0, End: t0.Add(time.Hour)}
	if s := o2.String(); s != "e[09:00:00..10:00:00]{}" {
		t.Fatalf("interval String = %q", s)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Recent: "recent", Chronicle: "chronicle",
		Continuous: "continuous", Cumulative: "cumulative", Mode(9): "Mode(9)",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
	for _, s := range []string{"recent", "Chronicle", "CONTINUOUS", "cumulative"} {
		if _, err := ParseMode(s); err != nil {
			t.Errorf("ParseMode(%q): %v", s, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus mode")
	}
}

// raiseAt advances the simulated clock to at and raises the event, so
// occurrences get distinct, ordered timestamps.
func raiseAt(d *Detector, sim *clock.Sim, at time.Time, name string, p Params) {
	sim.AdvanceTo(at)
	if err := d.Raise(name, p); err != nil {
		panic(fmt.Sprintf("raiseAt(%s): %v", name, err))
	}
}
