package event

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Expr is the abstract syntax of an event expression. Expressions are
// how rule generation describes composite events declaratively, e.g.
//
//	SEQ(addActiveRole.Manager, addActiveRole.JuniorEmp)
//	PLUS(openFile, 2h)
//	APERIODIC@chronicle(txBegin, activate, txEnd)
//	ANY(2, e1, e2, e3)
//
// An operator may carry an explicit consumption mode with the
// "@recent|@chronicle|@continuous|@cumulative" suffix; the default is
// Recent (Snoop's default context).
type Expr interface {
	String() string
	exprNode()
}

// NameExpr references a previously defined event by name.
type NameExpr string

func (e NameExpr) String() string { return string(e) }
func (NameExpr) exprNode()        {}

// OpKind enumerates the composite operators.
type OpKind string

// The Snoop(IB) operators supported by the engine.
const (
	OpOr        OpKind = "OR"
	OpAnd       OpKind = "AND"
	OpSeq       OpKind = "SEQ"
	OpNot       OpKind = "NOT"
	OpAny       OpKind = "ANY"
	OpPlus      OpKind = "PLUS"
	OpAperiodic OpKind = "APERIODIC"
	OpAStar     OpKind = "ASTAR"
	OpPeriodic  OpKind = "PERIODIC"
	OpPStar     OpKind = "PSTAR"
)

// OpExpr is an operator application.
type OpExpr struct {
	Kind OpKind
	Mode Mode
	Args []Expr
	// Dur is the PLUS delta or the PERIODIC/PSTAR period.
	Dur time.Duration
	// Count is the ANY threshold m.
	Count int
}

func (OpExpr) exprNode() {}

// String renders the expression in canonical parseable form.
func (e OpExpr) String() string {
	var b strings.Builder
	b.WriteString(string(e.Kind))
	if e.Mode != Recent {
		b.WriteByte('@')
		b.WriteString(e.Mode.String())
	}
	b.WriteByte('(')
	first := true
	emit := func(s string) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(s)
	}
	switch e.Kind {
	case OpAny:
		emit(strconv.Itoa(e.Count))
		for _, a := range e.Args {
			emit(a.String())
		}
	case OpPlus:
		emit(e.Args[0].String())
		emit(e.Dur.String())
	case OpPeriodic, OpPStar:
		emit(e.Args[0].String())
		emit(e.Dur.String())
		emit(e.Args[1].String())
	default:
		for _, a := range e.Args {
			emit(a.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Convenience constructors for building expressions in code.

// Or builds OR(args...).
func Or(args ...Expr) Expr { return OpExpr{Kind: OpOr, Args: args} }

// And builds AND(a, b).
func And(a, b Expr) Expr { return OpExpr{Kind: OpAnd, Args: []Expr{a, b}} }

// Seq builds SEQ(a, b).
func Seq(a, b Expr) Expr { return OpExpr{Kind: OpSeq, Args: []Expr{a, b}} }

// Not builds NOT(a, b, c).
func Not(a, b, c Expr) Expr { return OpExpr{Kind: OpNot, Args: []Expr{a, b, c}} }

// Any builds ANY(m, args...).
func Any(m int, args ...Expr) Expr { return OpExpr{Kind: OpAny, Count: m, Args: args} }

// Plus builds PLUS(a, d).
func Plus(a Expr, d time.Duration) Expr { return OpExpr{Kind: OpPlus, Args: []Expr{a}, Dur: d} }

// Aperiodic builds APERIODIC(a, b, c).
func Aperiodic(a, b, c Expr) Expr { return OpExpr{Kind: OpAperiodic, Args: []Expr{a, b, c}} }

// AStar builds the cumulative aperiodic A*(a, b, c).
func AStar(a, b, c Expr) Expr { return OpExpr{Kind: OpAStar, Args: []Expr{a, b, c}} }

// Periodic builds PERIODIC(a, tau, c).
func Periodic(a Expr, tau time.Duration, c Expr) Expr {
	return OpExpr{Kind: OpPeriodic, Args: []Expr{a, c}, Dur: tau}
}

// PStar builds the cumulative periodic P*(a, tau, c).
func PStar(a Expr, tau time.Duration, c Expr) Expr {
	return OpExpr{Kind: OpPStar, Args: []Expr{a, c}, Dur: tau}
}

// WithMode returns e with its consumption mode set (no-op for NameExpr).
func WithMode(e Expr, m Mode) Expr {
	if op, ok := e.(OpExpr); ok {
		op.Mode = m
		return op
	}
	return e
}

// ---------------------------------------------------------------------------
// Parser

// Parse parses the canonical event-expression syntax produced by
// OpExpr.String.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("event: trailing input at %d in %q", p.pos, src)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for expression literals.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("event: %s at %d in %q", fmt.Sprintf(format, args...), p.pos, p.src)
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// ident consumes an identifier: letters, digits, '_', '.', '-'.
func (p *parser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c == '.' || c == '-' || c == '*' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

var opKinds = map[string]OpKind{
	"OR": OpOr, "AND": OpAnd, "SEQ": OpSeq, "SEQUENCE": OpSeq, "NOT": OpNot,
	"ANY": OpAny, "PLUS": OpPlus, "APERIODIC": OpAperiodic, "ASTAR": OpAStar,
	"A*": OpAStar, "PERIODIC": OpPeriodic, "PSTAR": OpPStar, "P*": OpPStar,
}

func (p *parser) parseExpr() (Expr, error) {
	p.skipSpace()
	word := p.ident()
	if word == "" {
		return nil, p.errf("expected event name or operator")
	}
	kind, isOp := opKinds[strings.ToUpper(word)]
	p.skipSpace()
	// An operator must be followed by '(' or '@mode('; otherwise the
	// word is an event name (so an event legitimately named "or" works
	// when not followed by parentheses).
	if !isOp || (p.peek() != '(' && p.peek() != '@') {
		return NameExpr(word), nil
	}
	mode := Recent
	if p.peek() == '@' {
		p.pos++
		m, err := ParseMode(p.ident())
		if err != nil {
			return nil, p.errf("%v", err)
		}
		mode = m
	}
	if err := p.expect('('); err != nil {
		return nil, err
	}
	op := OpExpr{Kind: kind, Mode: mode}
	if err := p.parseArgs(&op); err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	if err := validate(op); err != nil {
		return nil, fmt.Errorf("%v in %q", err, p.src)
	}
	return op, nil
}

// parseArgs fills the operator's argument slots according to its arity
// template: ANY takes a leading integer; PLUS takes a trailing duration;
// PERIODIC/PSTAR take (event, duration, event).
func (p *parser) parseArgs(op *OpExpr) error {
	idx := 0
	for {
		p.skipSpace()
		if p.peek() == ')' {
			return nil
		}
		if idx > 0 {
			if err := p.expect(','); err != nil {
				return err
			}
			p.skipSpace()
		}
		switch {
		case op.Kind == OpAny && idx == 0:
			n, err := strconv.Atoi(p.ident())
			if err != nil {
				return p.errf("ANY threshold must be an integer")
			}
			op.Count = n
		case op.Kind == OpPlus && idx == 1,
			(op.Kind == OpPeriodic || op.Kind == OpPStar) && idx == 1:
			d, err := time.ParseDuration(p.ident())
			if err != nil {
				return p.errf("bad duration: %v", err)
			}
			op.Dur = d
		default:
			arg, err := p.parseExpr()
			if err != nil {
				return err
			}
			op.Args = append(op.Args, arg)
		}
		idx++
	}
}

// validate checks operator arities.
func validate(op OpExpr) error {
	switch op.Kind {
	case OpOr:
		if len(op.Args) < 2 {
			return fmt.Errorf("event: OR needs at least 2 arguments, got %d", len(op.Args))
		}
	case OpAnd, OpSeq:
		if len(op.Args) != 2 {
			return fmt.Errorf("event: %s needs exactly 2 arguments, got %d", op.Kind, len(op.Args))
		}
	case OpNot, OpAperiodic, OpAStar:
		if len(op.Args) != 3 {
			return fmt.Errorf("event: %s needs exactly 3 arguments, got %d", op.Kind, len(op.Args))
		}
	case OpAny:
		if len(op.Args) < 1 {
			return fmt.Errorf("event: ANY needs at least 1 event argument")
		}
		if op.Count < 1 || op.Count > len(op.Args) {
			return fmt.Errorf("event: ANY threshold %d out of range [1,%d]", op.Count, len(op.Args))
		}
	case OpPlus:
		if len(op.Args) != 1 {
			return fmt.Errorf("event: PLUS needs exactly 1 event argument, got %d", len(op.Args))
		}
		if op.Dur <= 0 {
			return fmt.Errorf("event: PLUS duration must be positive, got %v", op.Dur)
		}
	case OpPeriodic, OpPStar:
		if len(op.Args) != 2 {
			return fmt.Errorf("event: %s needs (start, period, end), got %d events", op.Kind, len(op.Args))
		}
		if op.Dur <= 0 {
			return fmt.Errorf("event: %s period must be positive, got %v", op.Kind, op.Dur)
		}
	default:
		return fmt.Errorf("event: unknown operator %q", op.Kind)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Compilation

// Define registers name as a composite event described by e. Referenced
// event names must already be defined. Defining an existing name fails.
func (d *Detector) Define(name string, e Expr) error {
	d.smu.Lock()
	defer d.smu.Unlock()
	if name == "" {
		return fmt.Errorf("event: empty event name")
	}
	if _, exists := d.nodes[name]; exists {
		return fmt.Errorf("event: %q already defined", name)
	}
	n, err := d.compileLocked(name, e)
	if err != nil {
		return err
	}
	d.nodes[name] = n
	d.publishLocked()
	return nil
}

// DefineExpr parses src and registers it under name.
func (d *Detector) DefineExpr(name, src string) error {
	e, err := Parse(src)
	if err != nil {
		return err
	}
	return d.Define(name, e)
}

// MustDefine is Define that panics on error.
func (d *Detector) MustDefine(name string, e Expr) {
	if err := d.Define(name, e); err != nil {
		panic(err)
	}
}

// compileLocked builds the node graph for e. name is used for the root
// node; nested operator nodes get synthesized names. Caller holds smu.
func (d *Detector) compileLocked(name string, e Expr) (node, error) {
	switch ex := e.(type) {
	case NameExpr:
		child, err := d.lookupLocked(string(ex))
		if err != nil {
			return nil, err
		}
		// A named alias is a single-child OR.
		n := &orNode{baseNode: baseNode{nm: name}, children: []node{child}}
		child.addParent(n)
		return n, nil
	case OpExpr:
		return d.compileOpLocked(name, ex)
	default:
		return nil, fmt.Errorf("event: unknown expression type %T", e)
	}
}

// compileArgLocked compiles a nested argument, giving operator arguments
// synthesized names.
func (d *Detector) compileArgLocked(e Expr) (node, error) {
	switch ex := e.(type) {
	case NameExpr:
		return d.lookupLocked(string(ex))
	case OpExpr:
		n, err := d.compileOpLocked(d.anonName(string(ex.Kind)), ex)
		if err != nil {
			return nil, err
		}
		d.nodes[n.name()] = n
		return n, nil
	default:
		return nil, fmt.Errorf("event: unknown expression type %T", e)
	}
}

func (d *Detector) compileOpLocked(name string, op OpExpr) (node, error) {
	if err := validate(op); err != nil {
		return nil, err
	}
	kids := make([]node, len(op.Args))
	for i, a := range op.Args {
		k, err := d.compileArgLocked(a)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	var n node
	switch op.Kind {
	case OpOr:
		n = &orNode{baseNode: baseNode{nm: name}, children: kids}
	case OpAnd:
		n = &andNode{baseNode: baseNode{nm: name}, left: kids[0], right: kids[1], mode: op.Mode}
	case OpSeq:
		n = &seqNode{baseNode: baseNode{nm: name}, left: kids[0], right: kids[1], mode: op.Mode}
	case OpNot:
		n = &notNode{baseNode: baseNode{nm: name}, a: kids[0], b: kids[1], c: kids[2], mode: op.Mode}
	case OpAny:
		n = &anyNode{baseNode: baseNode{nm: name}, m: op.Count, modeVal: op.Mode, children: kids}
	case OpPlus:
		n = &plusNode{baseNode: baseNode{nm: name}, child: kids[0], delta: op.Dur, mode: op.Mode}
	case OpAperiodic:
		n = &aperiodicNode{baseNode: baseNode{nm: name}, a: kids[0], b: kids[1], c: kids[2], mode: op.Mode}
	case OpAStar:
		n = &aperiodicNode{baseNode: baseNode{nm: name}, a: kids[0], b: kids[1], c: kids[2], mode: op.Mode, cumulative: true}
	case OpPeriodic:
		n = &periodicNode{baseNode: baseNode{nm: name}, a: kids[0], c: kids[1], tau: op.Dur, mode: op.Mode}
	case OpPStar:
		n = &periodicNode{baseNode: baseNode{nm: name}, a: kids[0], c: kids[1], tau: op.Dur, mode: op.Mode, cumulative: true}
	default:
		return nil, fmt.Errorf("event: unknown operator %q", op.Kind)
	}
	for _, k := range kids {
		k.addParent(n)
	}
	return n, nil
}
