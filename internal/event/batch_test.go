package event

import (
	"sync"
	"testing"
)

// TestBatchEmptyWait: a batch with no groups (every tuple served from a
// cache) must settle immediately instead of deadlocking on its own
// cascade hold.
func TestBatchEmptyWait(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("ev")
	b, err := d.NewBatch("ev")
	if err != nil {
		t.Fatal(err)
	}
	b.RaiseGroupOwned(nil, "s1") // empty group: no-op
	b.Wait()                     // must not block
}

// TestBatchUndefinedEvent: resolution happens once, up front.
func TestBatchUndefinedEvent(t *testing.T) {
	d, _ := newTestDetector()
	if _, err := d.NewBatch("nope"); err == nil {
		t.Fatal("undefined event accepted")
	}
	d.MustPrimitive("composite.base")
}

// TestBatchDeliversGroupsInOrder: one lane item per group, occurrences
// of a group delivered in slice order, groups in posting order on a
// shared lane.
func TestBatchDeliversGroupsInOrder(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("ev")
	var mu sync.Mutex
	var got []string
	if _, err := d.Subscribe("ev", func(o *Occurrence) {
		mu.Lock()
		got = append(got, o.Params["id"].(string))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	b, err := d.NewBatch("ev")
	if err != nil {
		t.Fatal(err)
	}
	b.RaiseGroupOwned([]Params{{"id": "a1"}, {"id": "a2"}}, "sA")
	b.RaiseGroupOwned([]Params{{"id": "b1"}}, "sB")
	b.Wait()
	want := []string{"a1", "a2", "b1"}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
	if n := d.Stats().Raised; n != 3 {
		t.Fatalf("raised = %d, want 3", n)
	}
}

// TestBatchWaitCoversCascades: a handler cascading with RaiseFrom joins
// the batch cascade; Wait must cover the cascaded work, including a
// second batch reusing the detector afterwards.
func TestBatchWaitCoversCascades(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("ev")
	d.MustPrimitive("follow")
	var mu sync.Mutex
	follows := 0
	if _, err := d.Subscribe("ev", func(o *Occurrence) {
		if err := d.RaiseFrom(o, "follow", nil); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe("follow", func(*Occurrence) {
		mu.Lock()
		follows++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		b, err := d.NewBatch("ev")
		if err != nil {
			t.Fatal(err)
		}
		b.RaiseGroupOwned([]Params{{}, {}}, "s1")
		b.Wait()
		mu.Lock()
		want := 2 * (round + 1)
		if follows != want {
			t.Fatalf("round %d: follows = %d, want %d (Wait returned early)", round, follows, want)
		}
		mu.Unlock()
	}
}

// TestBatchCarrierDeliversValues: RaiseGroupFn delivers every index with
// the values fill wrote, in order, through the reused carrier — the
// sole-scoped-subscriber shape where nothing retains the occurrence.
func TestBatchCarrierDeliversValues(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("ev")
	var mu sync.Mutex
	var got []string
	if _, err := d.SubscribeScoped("ev", func(o *Occurrence) {
		mu.Lock()
		got = append(got, o.Params["id"].(string)+"@"+o.Scope)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	ids := []string{"a1", "a2", "a3"}
	b, err := d.NewBatch("ev")
	if err != nil {
		t.Fatal(err)
	}
	b.RaiseGroupFn("sA", len(ids), func(i int, p Params) { p["id"] = ids[i] })
	b.RaiseGroupFn("sB", 1, func(i int, p Params) { p["id"] = "b1" })
	b.Wait()
	want := []string{"a1@sA", "a2@sA", "a3@sA", "b1@sB"}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
	if n := d.Stats().Raised; n != 4 {
		t.Fatalf("raised = %d, want 4", n)
	}
}

// TestBatchCarrierDegradesWhenRetained: with a second subscriber the
// shape is broken — deliver reports the occurrence escaped — so the
// carrier must hand every index its own occurrence and params map. A
// retaining handler proves it: each kept occurrence must still show its
// own values after the batch.
func TestBatchCarrierDegradesWhenRetained(t *testing.T) {
	d, _ := newTestDetector()
	d.MustPrimitive("ev")
	var mu sync.Mutex
	var kept []*Occurrence
	if _, err := d.SubscribeScoped("ev", func(*Occurrence) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Subscribe("ev", func(o *Occurrence) {
		mu.Lock()
		kept = append(kept, o)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	const n = 3
	b, err := d.NewBatch("ev")
	if err != nil {
		t.Fatal(err)
	}
	b.RaiseGroupFn("s1", n, func(i int, p Params) { p["i"] = i })
	b.Wait()
	if len(kept) != n {
		t.Fatalf("retained %d occurrences, want %d", len(kept), n)
	}
	seen := make(map[*Occurrence]bool)
	for want, o := range kept {
		if seen[o] {
			t.Fatalf("occurrence %d reused a retained struct", want)
		}
		seen[o] = true
		if got := o.Params["i"].(int); got != want {
			t.Fatalf("retained occurrence %d holds i=%d (carrier rewrote a retained map)", want, got)
		}
	}
}
