package event

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"activerbac/internal/clock"
)

// Determinism property: the detector is a deterministic function of its
// input stream — the same primitive occurrences, raised at the same
// simulated instants into an identically defined graph, produce exactly
// the same composite detections in the same order, for every operator
// and consumption mode.

// traceRun builds a detector with a representative graph, feeds it a
// seeded stream, and returns the detection trace.
func traceRun(seed int64, mode Mode) []string {
	sim := clock.NewSim(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
	det := New(sim)
	for _, n := range []string{"a", "b", "c"} {
		det.MustPrimitive(n)
	}
	det.MustDefine("seq", WithMode(Seq(NameExpr("a"), NameExpr("b")), mode))
	det.MustDefine("and", WithMode(And(NameExpr("a"), NameExpr("c")), mode))
	det.MustDefine("not", WithMode(Not(NameExpr("a"), NameExpr("b"), NameExpr("c")), mode))
	det.MustDefine("ap", WithMode(Aperiodic(NameExpr("a"), NameExpr("b"), NameExpr("c")), mode))
	det.MustDefine("plus", WithMode(Plus(NameExpr("a"), 5*time.Second), mode))
	det.MustDefine("nested", WithMode(Seq(NameExpr("seq"), NameExpr("c")), mode))

	var trace []string
	record := func(o *Occurrence) {
		trace = append(trace, fmt.Sprintf("%s@%d-%d/%d",
			o.Event, o.Start.Unix(), o.End.Unix(), len(o.Constituents)))
	}
	for _, name := range []string{"seq", "and", "not", "ap", "plus", "nested"} {
		if _, err := det.Subscribe(name, record); err != nil {
			panic(err)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c"}
	for i := 0; i < 200; i++ {
		sim.Advance(time.Duration(1+rng.Intn(3)) * time.Second)
		det.MustRaise(names[rng.Intn(len(names))], Params{"i": i})
	}
	sim.Advance(time.Minute) // flush pending PLUS timers
	return trace
}

func TestDetectorDeterminism(t *testing.T) {
	f := func(seed int64, modeRaw uint8) bool {
		mode := Mode(int(modeRaw) % 4)
		a := traceRun(seed, mode)
		b := traceRun(seed, mode)
		if len(a) != len(b) {
			t.Logf("seed=%d mode=%s: lengths %d vs %d", seed, mode, len(a), len(b))
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("seed=%d mode=%s: index %d: %q vs %q", seed, mode, i, a[i], b[i])
				return false
			}
		}
		return len(a) > 0 // a 200-event stream must detect something
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Oracle property: Chronicle SEQ(a, b) against a straightforward FIFO
// reference implementation.
func TestSeqChronicleOracle(t *testing.T) {
	f := func(seed int64) bool {
		sim := clock.NewSim(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
		det := New(sim)
		det.MustPrimitive("a")
		det.MustPrimitive("b")
		det.MustDefine("s", WithMode(Seq(NameExpr("a"), NameExpr("b")), Chronicle))
		var got [][2]int
		if _, err := det.Subscribe("s", func(o *Occurrence) {
			ai, _ := o.Constituents[0].Params["i"].(int)
			bi, _ := o.Constituents[1].Params["i"].(int)
			got = append(got, [2]int{ai, bi})
		}); err != nil {
			t.Fatal(err)
		}

		// Reference: FIFO queue of pending initiators.
		var pending []int
		var want [][2]int

		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			sim.Advance(time.Second) // strictly increasing instants
			if rng.Intn(2) == 0 {
				det.MustRaise("a", Params{"i": i})
				pending = append(pending, i)
			} else {
				det.MustRaise("b", Params{"i": i})
				if len(pending) > 0 {
					want = append(want, [2]int{pending[0], i})
					pending = pending[1:]
				}
			}
		}
		if len(got) != len(want) {
			t.Logf("seed=%d: %d detections, oracle %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed=%d: index %d: got %v want %v", seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Oracle property: Recent SEQ(a, b) — the most recent initiator pairs
// with every terminator until replaced.
func TestSeqRecentOracle(t *testing.T) {
	f := func(seed int64) bool {
		sim := clock.NewSim(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
		det := New(sim)
		det.MustPrimitive("a")
		det.MustPrimitive("b")
		det.MustDefine("s", Seq(NameExpr("a"), NameExpr("b")))
		var got [][2]int
		if _, err := det.Subscribe("s", func(o *Occurrence) {
			ai, _ := o.Constituents[0].Params["i"].(int)
			bi, _ := o.Constituents[1].Params["i"].(int)
			got = append(got, [2]int{ai, bi})
		}); err != nil {
			t.Fatal(err)
		}

		latest := -1
		var want [][2]int
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			sim.Advance(time.Second)
			if rng.Intn(2) == 0 {
				det.MustRaise("a", Params{"i": i})
				latest = i
			} else {
				det.MustRaise("b", Params{"i": i})
				if latest >= 0 {
					want = append(want, [2]int{latest, i})
				}
			}
		}
		return fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
