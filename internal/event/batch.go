package event

import "sync"

// Batch groups several synchronous raises of one primitive event into
// per-scope lane work items: every occurrence of one scope group rides a
// single queued item, so a thousand-tuple batch crosses each lane
// boundary once per scope instead of once per tuple. All groups share
// one cascade, so Wait gives the same settled-cascade guarantee
// RaiseSync gives a single request — including cross-lane RaiseFrom
// descendants — at one cascade allocation per batch.
//
// Groups are staged by RaiseGroupOwned or RaiseGroupFn and executed by
// Wait: groups
// routed to the same lane (notably the global lane, and everything in
// the single-lane configuration) post in staging order and so keep
// total order exactly like back-to-back RaiseSync calls, while groups
// on distinct lanes execute concurrently — the same interleaving
// concurrent per-tuple callers produce today, but with one posting
// goroutine per lane instead of one round trip per tuple.
//
// A Batch is single-caller: build it, stage every group, Wait once. It
// must not be reused after Wait, and — like RaiseSync — must not be
// driven from inside a handler.
type Batch struct {
	d    *Detector
	prim *primitiveNode
	name string
	casc *cascade
	// lanes are the distinct lanes groups were staged for, in first-use
	// order; Wait runs one posting goroutine per lane and drains each to
	// quiet, preserving RaiseSync's same-lane completion guarantee.
	lanes []*lane
	jobs  []batchJob
}

// batchJob is one staged scope group awaiting execution, in one of two
// forms: an owned-params group (group non-nil) delivering one
// caller-built map per occurrence, or a carrier group (fill non-nil)
// delivering n occurrences through one reused occurrence struct and
// params map that fill rewrites per index.
type batchJob struct {
	ln    *lane
	scope string
	group []Params
	n     int
	fill  func(i int, p Params)
}

// NewBatch resolves name once and prepares a batch raise of it.
func (d *Detector) NewBatch(name string) (*Batch, error) {
	prim, err := d.resolvePrimitive(name)
	if err != nil {
		return nil, err
	}
	b := &Batch{d: d, prim: prim, name: name, casc: newCascade()}
	// The batch itself holds one cascade slot until Wait: without it the
	// cascade would settle the moment the first group finished, and
	// later groups would run untracked.
	b.casc.join()
	return b, nil
}

// RaiseGroupOwned stages one scope group as a single lane work item.
// The item builds and delivers an occurrence per params map in slice
// order, so a group's occurrences process in submission order on their
// lane. Ownership of every map in group transfers to the detector — the
// caller must not touch them afterwards (the RaiseSyncTracedOwned
// contract, batch-wide).
func (b *Batch) RaiseGroupOwned(group []Params, scope string) {
	if len(group) == 0 {
		return
	}
	ln := b.d.laneFor(b.prim, scope)
	b.noteLane(ln)
	b.jobs = append(b.jobs, batchJob{ln: ln, scope: scope, group: group})
}

// RaiseGroupFn stages one scope group of n occurrences delivered through
// a single reused carrier: one occurrence struct and one params map,
// which fill rewrites in place for each index before delivery. The
// caller asserts that nothing retains occurrences of this event beyond
// the synchronous delivery — the verdict-cache-safety shape (sole
// scope-marked subscriber, no composite parents, no outcome listeners).
// The shape is re-verified per delivery: the moment a delivery reports
// the occurrence escaped (a subscriber or composite parent appeared
// mid-batch), the tainted carrier is abandoned and every remaining
// index gets fresh storage, so a mid-batch policy change degrades to
// the owned-group cost instead of corrupting a retained occurrence.
func (b *Batch) RaiseGroupFn(scope string, n int, fill func(i int, p Params)) {
	if n == 0 {
		return
	}
	ln := b.d.laneFor(b.prim, scope)
	b.noteLane(ln)
	b.jobs = append(b.jobs, batchJob{ln: ln, scope: scope, n: n, fill: fill})
}

// postLane posts ln's staged groups in staging order. Under the
// caller-drains discipline each post of an idle lane drains it
// synchronously, so by return every group posted here has been
// delivered or handed to a concurrent drainer the final awaitQuiet
// will observe.
func (b *Batch) postLane(ln *lane) {
	now := b.d.clk.Now()
	name, prim := b.name, b.prim
	for _, j := range b.jobs {
		if j.ln != ln {
			continue
		}
		if j.fill != nil {
			n, fill, scope := j.n, j.fill, j.scope
			ln.post(b.casc, func(ex exec) {
				ex.d.raised.Add(uint64(n))
				p := make(Params, 8)
				occ := new(Occurrence)
				reuse := true
				for i := 0; i < n; i++ {
					if !reuse {
						// The previous delivery escaped: its occurrence
						// and map are retained somewhere, so neither may
						// be rewritten.
						p = make(Params, 8)
						occ = new(Occurrence)
					}
					fill(i, p)
					*occ = Occurrence{Event: name, Start: now, End: now, Params: p, Scope: scope}
					reuse = ex.d.deliver(ex, prim, occ)
				}
			})
			continue
		}
		group, scope := j.group, j.scope
		ln.post(b.casc, func(ex exec) {
			ex.d.raised.Add(uint64(len(group)))
			pooled := ex.d.occPoolOK.Load()
			for _, p := range group {
				var occ *Occurrence
				if pooled {
					occ = occPool.Get().(*Occurrence)
				} else {
					occ = new(Occurrence)
				}
				*occ = Occurrence{Event: name, Start: now, End: now, Params: p, Scope: scope}
				if recyclable := ex.d.deliver(ex, prim, occ); pooled && recyclable {
					*occ = Occurrence{}
					occPool.Put(occ)
				}
			}
		})
	}
}

// Wait executes the staged groups — one posting goroutine per distinct
// lane, the first lane on the caller — releases the batch's own cascade
// hold, blocks until the whole cascade settled, then drains each
// touched lane to quiet. Every post joins the cascade before Wait
// releases its hold (the goroutines are joined first), so the cascade
// cannot settle while groups are still in flight.
func (b *Batch) Wait() {
	if len(b.lanes) > 1 {
		var wg sync.WaitGroup
		for _, ln := range b.lanes[1:] {
			wg.Add(1)
			go func(ln *lane) {
				defer wg.Done()
				b.postLane(ln)
			}(ln)
		}
		b.postLane(b.lanes[0])
		wg.Wait()
	} else if len(b.lanes) == 1 {
		b.postLane(b.lanes[0])
	}
	b.casc.leave()
	b.casc.wait()
	for _, ln := range b.lanes {
		ln.awaitQuiet()
	}
}

// noteLane records a lane the batch staged work for, deduplicated. Lane
// counts are small (bounded by the scope-lane count plus one), so a
// linear scan beats a map.
func (b *Batch) noteLane(ln *lane) {
	for _, have := range b.lanes {
		if have == ln {
			return
		}
	}
	b.lanes = append(b.lanes, ln)
}
