package event

import (
	"sync"
	"sync/atomic"
	"time"
)

// A cascade tracks one synchronous enforcement request and every work
// item transitively spawned from it, across any number of lanes: the
// initial occurrence, rule firings, and the events those firings raise
// with RaiseFrom. RaiseSync waits for the cascade to settle, which is
// what lets a request that hops lanes (a scope-lane activation whose
// cardinality rule runs on the global lane) still return only after its
// whole rule cascade has voted.
//
// Membership is monotone: items may only join while at least one item
// of the cascade is still pending, so once the counter reaches zero it
// stays settled and late joiners (e.g. a timer firing long after the
// request completed) are refused and simply run untracked.
type cascade struct {
	mu      sync.Mutex
	pending int
	settled bool
	done    chan struct{}
}

func newCascade() *cascade {
	return &cascade{done: make(chan struct{})}
}

// join registers one more pending item; it reports false when the
// cascade has already settled (the item then runs untracked).
func (c *cascade) join() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.settled {
		return false
	}
	c.pending++
	return true
}

// leave marks one item complete, settling the cascade when it was the
// last one.
func (c *cascade) leave() {
	c.mu.Lock()
	c.pending--
	if c.pending == 0 && !c.settled {
		c.settled = true
		close(c.done)
	}
	c.mu.Unlock()
}

// wait blocks until the cascade settles.
func (c *cascade) wait() { <-c.done }

// exec is the execution context of one drain item: the detector, the
// lane the item runs on, and the cascade (if any) it belongs to. It is
// threaded through occurrence delivery so that composite detections and
// cascaded raises stay attributed to the right lane and cascade.
type exec struct {
	d    *Detector
	ln   *lane
	casc *cascade
}

// item is one queued unit of drain work. at is the engine-clock enqueue
// instant, stamped only when lane-wait instrumentation is on.
type item struct {
	fn   func(exec)
	casc *cascade
	at   time.Time
}

// lane is one drain pipeline: a FIFO work queue plus the
// caller-drains discipline the seed detector used globally — whichever
// goroutine enqueues onto an idle lane drains it to empty, and exactly
// one goroutine at a time drains a given lane, so state touched only
// from that lane's items needs no locking. A sharded Detector owns
// several scope lanes (each serializing one partition of the key space)
// and one global lane (serializing everything that observes
// cross-request state: composite operators, globalized rules).
type lane struct {
	d    *Detector
	name string

	// qmu guards the queue and drain ownership; quiet is broadcast
	// whenever a drain completes.
	qmu      sync.Mutex
	quiet    *sync.Cond
	queue    []item
	draining bool
	maxDepth int

	// emu serializes drain execution on this lane.
	emu sync.Mutex

	enqueued  atomic.Uint64
	processed atomic.Uint64
}

func newLane(d *Detector, name string) *lane {
	ln := &lane{d: d, name: name}
	ln.quiet = sync.NewCond(&ln.qmu)
	return ln
}

// post appends a work item and drains the lane unless another goroutine
// is already draining it (that goroutine will pick the item up). When c
// is non-nil the item joins the cascade; a settled cascade is not
// revived — the item then runs untracked.
func (ln *lane) post(c *cascade, fn func(exec)) {
	if c != nil && !c.join() {
		c = nil
	}
	ln.enqueued.Add(1)
	it := item{fn: fn, casc: c}
	if ins := ln.d.ins; ins != nil && ins.LaneWait != nil {
		it.at = ln.d.clk.Now()
	}
	ln.qmu.Lock()
	ln.queue = append(ln.queue, it)
	if d := len(ln.queue); d > ln.maxDepth {
		ln.maxDepth = d
	}
	if ln.draining {
		ln.qmu.Unlock()
		return
	}
	ln.draining = true
	ln.qmu.Unlock()
	ln.drain()
}

// drain runs queued items to exhaustion (or the cascade safety bound).
// Caller must have won drain ownership (set draining under qmu).
func (ln *lane) drain() {
	ln.emu.Lock()
	steps := 0
	for {
		ln.qmu.Lock()
		if len(ln.queue) == 0 || steps >= ln.d.maxCade {
			// On cascade-bound overflow the remaining items are dropped
			// (a runaway-rule safety valve, as in the seed detector);
			// release their cascades so no waiter deadlocks.
			for _, it := range ln.queue {
				if it.casc != nil {
					it.casc.leave()
				}
			}
			ln.queue = ln.queue[:0]
			ln.draining = false
			ln.quiet.Broadcast()
			ln.qmu.Unlock()
			break
		}
		next := ln.queue[0]
		ln.queue = ln.queue[1:]
		ln.qmu.Unlock()
		steps++
		if !next.at.IsZero() {
			if ins := ln.d.ins; ins != nil && ins.LaneWait != nil {
				ins.LaneWait(ln.name, ln.d.clk.Now().Sub(next.at).Seconds())
			}
		}
		next.fn(exec{d: ln.d, ln: ln, casc: next.casc})
		if next.casc != nil {
			next.casc.leave()
		}
		ln.processed.Add(1)
	}
	ln.emu.Unlock()
}

// awaitQuiet blocks until the lane has no drain in progress and no
// queued work.
func (ln *lane) awaitQuiet() {
	ln.qmu.Lock()
	for ln.draining || len(ln.queue) > 0 {
		ln.quiet.Wait()
	}
	ln.qmu.Unlock()
}

// LaneStat is a snapshot of one lane's counters for status endpoints.
type LaneStat struct {
	// Lane names the pipeline ("global", "scope-0", ...).
	Lane string
	// Enqueued and Processed count work items over the lane's lifetime.
	Enqueued, Processed uint64
	// Depth is the current queue length; MaxDepth the high-water mark.
	Depth, MaxDepth int
}

func (ln *lane) stat() LaneStat {
	ln.qmu.Lock()
	depth, maxDepth := len(ln.queue), ln.maxDepth
	ln.qmu.Unlock()
	return LaneStat{
		Lane:      ln.name,
		Enqueued:  ln.enqueued.Load(),
		Processed: ln.processed.Load(),
		Depth:     depth,
		MaxDepth:  maxDepth,
	}
}
