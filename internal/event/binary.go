package event

// Binary Snoop operators: SEQ and AND. Both follow the initiator /
// terminator discipline, with pairing controlled by the consumption Mode:
//
//	Recent:     only the most recent initiator is kept; it keeps
//	            initiating detections until replaced.
//	Chronicle:  oldest eligible initiator pairs first; both sides are
//	            consumed.
//	Continuous: every eligible initiator pairs with the terminator (one
//	            detection each); all are consumed.
//	Cumulative: every eligible initiator folds into a single detection;
//	            all are consumed.

// seqNode detects SEQ(left, right): an occurrence of left followed by an
// occurrence of right, with interval semantics end(left) < start(right)
// (SnoopIB).
type seqNode struct {
	baseNode
	left, right node
	mode        Mode
	inits       []*Occurrence
}

func (n *seqNode) kind() string { return "SEQ" }

func (n *seqNode) process(src node, occ *Occurrence, ex exec) {
	if n.left == n.right {
		// SEQ(E, E): an occurrence first tries to terminate a pending
		// initiator; whether it also becomes an initiator depends on the
		// mode (consuming modes use each occurrence in one role only;
		// Recent keeps the latest occurrence initiating).
		terminated := n.terminate(occ, ex)
		if !terminated || n.mode == Recent {
			n.store(occ)
		}
		return
	}
	switch src {
	case n.right:
		n.terminate(occ, ex)
	case n.left:
		n.store(occ)
	}
}

// store records occ as an initiator per the node's mode.
func (n *seqNode) store(occ *Occurrence) {
	if n.mode == Recent {
		n.inits = n.inits[:0]
	}
	n.inits = append(n.inits, occ)
}

// terminate pairs occ (a right-side occurrence) against pending
// initiators; it reports whether at least one detection fired.
func (n *seqNode) terminate(occ *Occurrence, ex exec) bool {
	eligible := func(init *Occurrence) bool { return init.End.Before(occ.Start) }
	switch n.mode {
	case Recent:
		if len(n.inits) > 0 && eligible(n.inits[len(n.inits)-1]) {
			ex.d.deliver(ex, n, compose(n.nm, 0, n.inits[len(n.inits)-1], occ))
			return true
		}
	case Chronicle:
		for i, init := range n.inits {
			if eligible(init) {
				if i == 0 {
					n.inits = n.inits[1:] // FIFO head: O(1) pop
				} else {
					n.inits = append(n.inits[:i], n.inits[i+1:]...)
				}
				ex.d.deliver(ex, n, compose(n.nm, 0, init, occ))
				return true
			}
		}
	case Continuous:
		var keep []*Occurrence
		fired := false
		matched := make([]*Occurrence, 0, len(n.inits))
		for _, init := range n.inits {
			if eligible(init) {
				matched = append(matched, init)
			} else {
				keep = append(keep, init)
			}
		}
		if len(matched) > 0 {
			n.inits = keep
			for _, init := range matched {
				ex.d.deliver(ex, n, compose(n.nm, 0, init, occ))
			}
			fired = true
		}
		return fired
	case Cumulative:
		var keep, matched []*Occurrence
		for _, init := range n.inits {
			if eligible(init) {
				matched = append(matched, init)
			} else {
				keep = append(keep, init)
			}
		}
		if len(matched) > 0 {
			n.inits = keep
			parts := append(matched, occ)
			ex.d.deliver(ex, n, compose(n.nm, 0, parts...))
			return true
		}
	}
	return false
}

// andNode detects AND(left, right): both events occurred, in either
// order. Occurrence intervals may overlap.
type andNode struct {
	baseNode
	left, right node
	mode        Mode
	lbuf, rbuf  []*Occurrence
}

func (n *andNode) kind() string { return "AND" }

func (n *andNode) process(src node, occ *Occurrence, ex exec) {
	if n.left == n.right {
		// AND(E, E): pair consecutive occurrences from one buffer.
		if n.pair(&n.lbuf, occ, ex) {
			return
		}
		n.storeSide(&n.lbuf, occ)
		return
	}
	var own, opposite *[]*Occurrence
	switch src {
	case n.left:
		own, opposite = &n.lbuf, &n.rbuf
	case n.right:
		own, opposite = &n.rbuf, &n.lbuf
	default:
		return
	}
	if n.pair(opposite, occ, ex) {
		return
	}
	n.storeSide(own, occ)
}

func (n *andNode) storeSide(buf *[]*Occurrence, occ *Occurrence) {
	if n.mode == Recent {
		*buf = (*buf)[:0]
	}
	*buf = append(*buf, occ)
}

// pair matches occ (acting as terminator) against the opposite buffer;
// it reports whether a detection fired.
func (n *andNode) pair(opposite *[]*Occurrence, occ *Occurrence, ex exec) bool {
	buf := *opposite
	if len(buf) == 0 {
		return false
	}
	switch n.mode {
	case Recent:
		// Latest opposite remains for future pairings.
		ex.d.deliver(ex, n, compose(n.nm, 0, buf[len(buf)-1], occ))
		return true
	case Chronicle:
		init := buf[0]
		*opposite = buf[1:]
		ex.d.deliver(ex, n, compose(n.nm, 0, init, occ))
		return true
	case Continuous:
		*opposite = nil
		for _, init := range buf {
			ex.d.deliver(ex, n, compose(n.nm, 0, init, occ))
		}
		return true
	case Cumulative:
		*opposite = nil
		parts := append(append([]*Occurrence{}, buf...), occ)
		ex.d.deliver(ex, n, compose(n.nm, 0, parts...))
		return true
	}
	return false
}
