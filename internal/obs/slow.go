package obs

import (
	"sync"
	"time"
)

// SlowRecord is the structured capture of one decision that exceeded
// the slow threshold: the tuple-level facts plus — when the decision
// was traced — the full cascade trace, retained here even after the
// trace ring evicts it.
type SlowRecord struct {
	At       time.Time  `json:"at"`
	Event    string     `json:"event"`
	Scope    string     `json:"scope,omitempty"`
	Seconds  float64    `json:"seconds"`
	Allowed  bool       `json:"allowed"`
	Reason   string     `json:"reason,omitempty"`
	TraceID  string     `json:"trace_id,omitempty"`
	TraceSeq uint64     `json:"trace_seq,omitempty"` // ring id, for /v1/traces/{id}
	Trace    *TraceData `json:"trace,omitempty"`
}

// SlowRing retains the most recent slow-decision records in a
// fixed-size ring. The threshold lives with the ring so the engine's
// per-decision check is one nil test plus one duration compare.
type SlowRing struct {
	threshold time.Duration

	mu   sync.Mutex
	buf  []SlowRecord
	next int
	size int
}

// NewSlowRing returns a ring retaining up to capacity records
// (minimum 1) of decisions taking at least threshold.
func NewSlowRing(capacity int, threshold time.Duration) *SlowRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowRing{buf: make([]SlowRecord, capacity), threshold: threshold}
}

// Threshold returns the configured slow threshold.
func (r *SlowRing) Threshold() time.Duration { return r.threshold }

// Exceeds reports whether a decision of duration d qualifies as slow.
func (r *SlowRing) Exceeds(d time.Duration) bool { return d >= r.threshold }

// Record retains one slow-decision record, evicting the oldest once
// the ring is full.
func (r *SlowRing) Record(rec SlowRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.mu.Unlock()
}

// Recent returns the n most recent records, newest first. n <= 0 means
// all retained records.
func (r *SlowRing) Recent(n int) []SlowRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.size {
		n = r.size
	}
	out := make([]SlowRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
