package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// StepKind classifies one step of a decision trace.
type StepKind string

// Trace step kinds, in the order they typically appear in a cascade.
const (
	// StepRaise is the delivery of a primitive occurrence on a lane.
	StepRaise StepKind = "raise"
	// StepOperator is a composite-operator match (SEQ, AND, ...).
	StepOperator StepKind = "operator"
	// StepCondition is one rule condition evaluation.
	StepCondition StepKind = "condition"
	// StepRule is a rule's branch verdict (Then vs Else).
	StepRule StepKind = "rule"
	// StepAction is one Then/Else action execution.
	StepAction StepKind = "action"
	// StepCascade is a cascaded raise (RaiseFrom) joining the request's
	// cascade, possibly hopping to another lane.
	StepCascade StepKind = "cascade"
)

// Step is one recorded step of a decision trace. At is the engine-clock
// instant; Seq the trace-local append order (the total order even when
// a simulated clock yields equal timestamps across lanes).
type Step struct {
	Seq    int       `json:"seq"`
	At     time.Time `json:"at"`
	Lane   string    `json:"lane,omitempty"`
	Kind   StepKind  `json:"kind"`
	Event  string    `json:"event,omitempty"`
	Rule   string    `json:"rule,omitempty"`
	Detail string    `json:"detail,omitempty"`
	OK     bool      `json:"ok"`
}

// String renders the step for logs and the rbacctl trace view.
func (s Step) String() string {
	verdict := "ok"
	if !s.OK {
		verdict = "fail"
	}
	out := fmt.Sprintf("#%d %s %s", s.Seq, s.Kind, verdict)
	if s.Lane != "" {
		out += " lane=" + s.Lane
	}
	if s.Event != "" {
		out += " event=" + s.Event
	}
	if s.Rule != "" {
		out += " rule=" + s.Rule
	}
	if s.Detail != "" {
		out += " " + s.Detail
	}
	return out
}

// Trace records the full OWTE cascade of one decision: the primitive
// raise, composite-operator matches, per-rule condition evaluations,
// the Then/Else branch taken, and cascaded raises — across every lane
// the cascade touches. Steps append under a mutex because a cascade may
// hop lanes; the disabled path (nil *Trace on the occurrence) costs one
// pointer check.
type Trace struct {
	id    uint64
	tid   TraceID // client-supplied identity; zero when edge-anonymous
	event string
	scope string
	begin time.Time

	mu    sync.Mutex
	end   time.Time
	done  bool
	steps []Step
}

// ID returns the ring-assigned trace id.
func (t *Trace) ID() uint64 { return t.id }

// TraceID returns the client-supplied 16-byte identity (zero when the
// trace was started without one).
func (t *Trace) TraceID() TraceID { return t.tid }

// Add appends one step stamped at the engine-clock instant at.
func (t *Trace) Add(at time.Time, lane string, kind StepKind, event, rule, detail string, ok bool) {
	t.mu.Lock()
	t.steps = append(t.steps, Step{
		Seq: len(t.steps), At: at, Lane: lane, Kind: kind,
		Event: event, Rule: rule, Detail: detail, OK: ok,
	})
	t.mu.Unlock()
}

// finish stamps the end of the decision; later Adds (a timer firing
// long after the request settled) still append but the trace stays
// marked complete as of end.
func (t *Trace) finish(at time.Time) {
	t.mu.Lock()
	t.end = at
	t.done = true
	t.mu.Unlock()
}

// TraceData is an immutable snapshot of a trace, safe to serialize.
// TraceID is the client-supplied hex identity ("" when the trace was
// started without one and is addressable only by ID).
type TraceData struct {
	ID       uint64    `json:"id"`
	TraceID  string    `json:"trace_id,omitempty"`
	Event    string    `json:"event"`
	Scope    string    `json:"scope,omitempty"`
	Begin    time.Time `json:"begin"`
	End      time.Time `json:"end"`
	Complete bool      `json:"complete"`
	Steps    []Step    `json:"steps"`
}

// Snapshot copies the trace into a TraceData.
func (t *Trace) Snapshot() TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceData{
		ID: t.id, TraceID: t.tid.String(), Event: t.event, Scope: t.scope,
		Begin: t.begin, End: t.end, Complete: t.done,
		Steps: append([]Step(nil), t.steps...),
	}
}

// TraceRing retains the most recent completed traces in a fixed-size
// ring buffer. Start hands out in-flight traces (held by the Decision);
// Finish stamps them and inserts them into the ring, evicting the
// oldest entry once the ring is full.
type TraceRing struct {
	lastID atomic.Uint64

	mu   sync.Mutex
	buf  []*Trace
	next int
	size int
}

// NewTraceRing returns a ring retaining up to capacity completed
// traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]*Trace, capacity)}
}

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int { return len(r.buf) }

// Start creates a new in-flight trace for a decision on event with the
// given scope key, beginning at the engine-clock instant at.
func (r *TraceRing) Start(event, scope string, at time.Time) *Trace {
	return r.StartID(TraceID{}, event, scope, at)
}

// StartID is Start with a client-supplied 16-byte identity attached, so
// the finished trace resolves under that id (GetByTraceID) as well as
// its ring-assigned sequence number. A zero tid is an anonymous Start.
func (r *TraceRing) StartID(tid TraceID, event, scope string, at time.Time) *Trace {
	return &Trace{id: r.lastID.Add(1), tid: tid, event: event, scope: scope, begin: at}
}

// Finish stamps the trace's end and retains it in the ring.
func (r *TraceRing) Finish(t *Trace, at time.Time) {
	t.finish(at)
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.mu.Unlock()
}

// Recent snapshots the n most recently completed traces, newest first.
// n <= 0 means all retained traces.
func (r *TraceRing) Recent(n int) []TraceData {
	r.mu.Lock()
	if n <= 0 || n > r.size {
		n = r.size
	}
	traces := make([]*Trace, 0, n)
	for i := 1; i <= n; i++ {
		traces = append(traces, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	r.mu.Unlock()
	out := make([]TraceData, len(traces))
	for i, t := range traces {
		out[i] = t.Snapshot()
	}
	return out
}

// Get returns the retained trace with the given id.
func (r *TraceRing) Get(id uint64) (TraceData, bool) {
	r.mu.Lock()
	var found *Trace
	for i := 0; i < r.size; i++ {
		t := r.buf[(r.next-1-i+len(r.buf))%len(r.buf)]
		if t.id == id {
			found = t
			break
		}
	}
	r.mu.Unlock()
	if found == nil {
		return TraceData{}, false
	}
	return found.Snapshot(), true
}

// GetByTraceID returns the most recently retained trace carrying the
// given client-supplied identity. The zero id never matches.
func (r *TraceRing) GetByTraceID(tid TraceID) (TraceData, bool) {
	if tid.IsZero() {
		return TraceData{}, false
	}
	r.mu.Lock()
	var found *Trace
	for i := 0; i < r.size; i++ {
		t := r.buf[(r.next-1-i+len(r.buf))%len(r.buf)]
		if t.tid == tid {
			found = t
			break
		}
	}
	r.mu.Unlock()
	if found == nil {
		return TraceData{}, false
	}
	return found.Snapshot(), true
}
