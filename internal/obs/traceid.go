package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceID is the 16-byte request-scoped trace identity minted at the
// edge (rbacctl, or any caller of the HTTP/wire transports) and carried
// with the request through System → Engine → cascade. It is rendered as
// 32 lowercase hex characters. The zero TraceID means "no client
// identity": the trace is addressable only by its ring-assigned
// sequence number.
type TraceID [16]byte

// IsZero reports whether the id is the zero (absent) identity.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex characters ("" when zero).
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// NewTraceID mints a random trace id. The extremely unlikely failure of
// the system randomness source yields the zero id, which downgrades the
// request to an anonymous (ring-id-only) trace rather than failing it.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		return TraceID{}
	}
	return t
}

// ParseTraceID parses a 32-hex-character trace id.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("obs: trace id must be 32 hex characters, got %d", len(s))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: bad trace id %q: %v", s, err)
	}
	return t, nil
}
