package obs

import (
	"fmt"
	"strings"
	"testing"
)

// unescapeLabelValue inverts the text-exposition label escaping
// (\\ -> \, \n -> newline, \" -> ") exactly as a Prometheus scraper
// does; any other escape sequence or a dangling backslash is an error.
func unescapeLabelValue(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("dangling backslash in %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("bad escape \\%c in %q", s[i], s)
		}
	}
	return b.String(), nil
}

// unescapeHelp inverts HELP-line escaping (\\ -> \, \n -> newline;
// quotes pass through unescaped).
func unescapeHelp(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("dangling backslash in %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("bad escape \\%c in %q", s[i], s)
		}
	}
	return b.String(), nil
}

// extractLabelValue pulls the escaped value of the given label out of
// the first sample line for metric name in the exposition text. The
// scan honours escaping: a quote preceded by an unconsumed backslash
// does not terminate the value.
func extractLabelValue(t *testing.T, exposition, metric, label string) string {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, metric+"{") {
			continue
		}
		marker := label + `="`
		at := strings.Index(line, marker)
		if at < 0 {
			continue
		}
		rest := line[at+len(marker):]
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				i++ // consume the escaped character
			case '"':
				return rest[:i]
			}
		}
		t.Fatalf("unterminated label value on line %q", line)
	}
	t.Fatalf("no sample line for %s{%s=...} in:\n%s", metric, label, exposition)
	return ""
}

// Every awkward byte sequence a rule name or scope string could carry
// must survive render -> parse byte-for-byte: that is what makes the
// exposition safe for arbitrary policy-authored identifiers.
func TestLabelEscapingRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`with "quotes"`,
		`back\slash`,
		`trailing backslash \`,
		`\ leading`,
		"line\nbreak",
		"\n",
		`"`,
		`\`,
		`\\`,
		`\n`, // literal backslash-n, must NOT collapse into a newline
		`\"`,
		"mix \"q\" and \\ and\nnewline",
		"tab\tand bell\a", // pass through unescaped
		"",
	}
	for i, v := range values {
		r := NewRegistry()
		r.Counter("test_esc_total", "Esc.", "name").With(v).Inc()
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		if v == "" {
			// An empty value renders as name="": nothing to extract, just
			// assert the line is well-formed.
			if !strings.Contains(out, `test_esc_total{name=""} 1`) {
				t.Errorf("empty label value rendered wrong:\n%s", out)
			}
			continue
		}
		escaped := extractLabelValue(t, out, "test_esc_total", "name")
		got, err := unescapeLabelValue(escaped)
		if err != nil {
			t.Errorf("case %d: rendered %q does not parse: %v", i, escaped, err)
			continue
		}
		if got != v {
			t.Errorf("case %d: round trip %q -> %q -> %q", i, v, escaped, got)
		}
		// The rendered sample line must stay a single line: a raw newline
		// in a label value would corrupt the whole exposition.
		if strings.Contains(escaped, "\n") {
			t.Errorf("case %d: escaped value %q contains a raw newline", i, escaped)
		}
	}
}

// Multi-label series keep values separated even when the values
// themselves contain quotes, commas and equals signs.
func TestLabelEscapingMultiLabel(t *testing.T) {
	r := NewRegistry()
	a, b := `x",evil="1`, `y\`
	r.Counter("test_multi_total", "Esc.", "first", "second").With(a, b).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	gotA, err := unescapeLabelValue(extractLabelValue(t, out, "test_multi_total", "first"))
	if err != nil || gotA != a {
		t.Errorf("first = %q (%v), want %q", gotA, err, a)
	}
	gotB, err := unescapeLabelValue(extractLabelValue(t, out, "test_multi_total", "second"))
	if err != nil || gotB != b {
		t.Errorf("second = %q (%v), want %q", gotB, err, b)
	}
}

// HELP text follows its own escaping rules: backslash and newline are
// escaped, double quotes are left alone.
func TestHelpEscapingRoundTrip(t *testing.T) {
	helps := []string{
		"Plain help.",
		"Help with \"quotes\" kept verbatim.",
		`Help with back\slash.`,
		"Help with\nnewline.",
		`Trailing \`,
	}
	for i, help := range helps {
		r := NewRegistry()
		r.Counter("test_help_total", help).With().Inc()
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		var escaped string
		for _, line := range strings.Split(b.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "# HELP test_help_total "); ok {
				escaped = rest
				break
			}
		}
		got, err := unescapeHelp(escaped)
		if err != nil {
			t.Errorf("case %d: HELP %q does not parse: %v", i, escaped, err)
			continue
		}
		if got != help {
			t.Errorf("case %d: HELP round trip %q -> %q -> %q", i, help, escaped, got)
		}
		if strings.Contains(help, `"`) && !strings.Contains(escaped, `"`) {
			t.Errorf("case %d: HELP quotes must pass through unescaped, got %q", i, escaped)
		}
	}
}

// Histogram bucket lines append the synthetic le label after the
// user's labels; escaping in those labels must not break the le
// separator.
func TestHistogramLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := `lane"0\`
	r.Histogram("test_esc_seconds", "Esc.", []float64{1}, "lane").With(v).Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	got, err := unescapeLabelValue(extractLabelValue(t, out, "test_esc_seconds_bucket", "lane"))
	if err != nil || got != v {
		t.Errorf("bucket lane = %q (%v), want %q", got, err, v)
	}
	if !strings.Contains(out, `le="1"} 1`) {
		t.Errorf("le label lost after escaped lane label:\n%s", out)
	}
}
