// Package obs is the observability layer of the enforcement engine:
// a dependency-free metrics registry rendered in the Prometheus text
// exposition format, and per-decision cascade traces retained in a
// fixed-size ring buffer.
//
// The package sits below every other internal package (it imports only
// the standard library), so the event detector, the rule pool, the
// audit log and the facade can all record into it without cycles.
// Everything is designed for a cheap disabled path: a nil *Observer,
// nil instrument or nil *Trace costs one pointer comparison on the hot
// path.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType is the TYPE line value of a metric family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; metric
// updates (Add/Set/Observe) are lock-free on the hot path.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	scrapers []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one named metric with a fixed label-name set and a series
// per label-value combination.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	mu      sync.Mutex
	series  map[string]series // key = joined escaped label values
	buckets []float64         // histogram families only
}

// series is one labelled instance of a family.
type series interface {
	// write renders the series' sample lines. lset is the rendered
	// label set ("" or `{k="v",...}` without histogram le).
	write(w io.Writer, name, lset string)
}

// register adds a family, panicking on a duplicate name with a
// different shape (a programming error: metric names are static).
func (r *Registry) register(name, help string, typ metricType, buckets []float64, labels ...string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		series: map[string]series{}, buckets: buckets}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// OnScrape registers fn to run at the start of every WritePrometheus
// call, before rendering. Collectors use it to mirror engine-internal
// counters (lane stats, per-rule firing counts) into the registry with
// zero hot-path cost.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.scrapers = append(r.scrapers, fn)
	r.mu.Unlock()
}

// WritePrometheus runs the scrape collectors and renders every family
// in the Prometheus text exposition format (version 0.0.4), families
// sorted by name and series sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	scrapers := append([]func(){}, r.scrapers...)
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, fn := range scrapers {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]series, len(keys))
	for i, k := range keys {
		snap[i] = f.series[k]
	}
	f.mu.Unlock()
	// A family with no series yet still renders its HELP/TYPE headers:
	// the registered catalog is discoverable before traffic arrives.
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for i, s := range snap {
		s.write(w, f.name, keys[i])
	}
}

// with returns the series for the given label values, creating it on
// first use. The returned key is the rendered label set.
func (f *family) with(mk func() series, values ...string) series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
	}
	f.mu.Unlock()
	return s
}

// renderLabels formats a label set as `{k="v",...}` (or "" when empty)
// with Prometheus escaping.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing value. Set exists only for
// scrape-time mirrors of counters owned elsewhere (the rule pool's
// atomic firing counts); hot paths use Inc/Add.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (must be >= 0).
func (c *Counter) Add(delta float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Set overwrites the value; for mirroring externally owned monotone
// counters at scrape time.
func (c *Counter) Set(v float64) { c.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, name, lset string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lset, formatFloat(c.Value()))
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, nil, labels...)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(func() series { return &Counter{} }, values...).(*Counter)
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a value that may go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, lset string) {
	fmt.Fprintf(w, "%s%s %s\n", name, lset, formatFloat(g.Value()))
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, nil, labels...)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(func() series { return &Gauge{} }, values...).(*Gauge)
}

// ---------------------------------------------------------------------------
// Histogram

// LatencyBuckets is the default bucket layout for sub-second latency
// histograms: 1µs to 2.5s in a 1-2.5-5 progression.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket histogram. Buckets are cumulative only at
// render time; Observe touches a single non-cumulative bucket counter,
// the total count and the sum.
type Histogram struct {
	upper []float64 // sorted upper bounds, +Inf implicit
	count []atomic.Uint64
	inf   atomic.Uint64
	total atomic.Uint64
	sum   atomic.Uint64 // float64 bits
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, count: make([]atomic.Uint64, len(upper))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.upper) {
		h.count[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) write(w io.Writer, name, lset string) {
	// Re-open the label set to append le="...".
	open := "{"
	if lset != "" {
		open = lset[:len(lset)-1] + ","
	}
	var cum uint64
	for i, ub := range h.upper {
		cum += h.count[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"} %d\n", name, open, formatFloat(ub), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, lset, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, lset, h.total.Load())
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// Histogram registers (or returns) a histogram family with the given
// bucket upper bounds (sorted ascending; +Inf is implicit). A nil
// buckets slice selects LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	return &HistogramVec{r.register(name, help, typeHistogram, buckets, labels...)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.with(func() series { return newHistogram(f.buckets) }, values...).(*Histogram)
}
