package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.", "kind")
	c.With("read").Add(3)
	c.With("write").Inc()
	g := r.Gauge("test_depth", "Depth.")
	g.With().Set(7.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n",
		"# TYPE test_ops_total counter\n",
		`test_ops_total{kind="read"} 3` + "\n",
		`test_ops_total{kind="write"} 1` + "\n",
		"# TYPE test_depth gauge\n",
		"test_depth 7.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name: test_depth before test_ops_total.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_ops_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10}).With()
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 56.05",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramWithLabels(t *testing.T) {
	r := NewRegistry()
	v := r.Histogram("test_wait_seconds", "Wait.", []float64{1}, "lane")
	v.With("global").Observe(0.5)
	v.With("scope-0").Observe(2)
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_wait_seconds_bucket{lane="global",le="1"} 1`,
		`test_wait_seconds_bucket{lane="scope-0",le="+Inf"} 1`,
		`test_wait_seconds_count{lane="global"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "Esc.", "name").With(`a"b\c` + "\nd").Inc()
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	want := `test_total{name="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("output missing %q:\n%s", want, b.String())
	}
}

func TestOnScrapeCollectors(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_mirrored", "Mirrored.").With()
	calls := 0
	r.OnScrape(func() { calls++; g.Set(float64(calls)) })
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	_ = r.WritePrometheus(&b)
	if calls != 2 {
		t.Fatalf("collector ran %d times, want 2", calls)
	}
	if !strings.Contains(b.String(), "test_mirrored 2") {
		t.Errorf("mirrored value not rendered:\n%s", b.String())
	}
}

func TestReRegisterReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "A.")
	b := r.Counter("test_total", "A.")
	a.With().Add(2)
	b.With().Inc()
	if got := a.With().Value(); got != 3 {
		t.Fatalf("value = %v, want 3", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "C.", "k")
	h := r.Histogram("test_seconds", "H.", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.With("x").Inc()
				h.With().Observe(float64(i))
			}
		}(i)
	}
	wg.Wait()
	if got := c.With("x").Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := h.With().Count(); got != 8000 {
		t.Fatalf("histogram count = %v, want 8000", got)
	}
}
