package obs

import (
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Sampler decides, per decision, whether a cascade trace should be
// recorded: a probabilistic coin flip (rate) bounded by a per-second
// budget (limit), so production can keep tracing always-on at ~1%
// without a traffic spike flooding the trace ring. An Observer with a
// nil Sampler traces every decision (the pre-sampling behaviour).
//
// Sample is clock-agnostic: callers pass the decision's start instant,
// so inside the engine the rate limiter runs on the engine clock (the
// engineclock vet discipline) and simulated time in tests drives the
// budget window deterministically.
type Sampler struct {
	threshold uint64 // admit when next rand63 < threshold; 1<<63 = always
	limit     uint64 // max admitted per second; 0 = unbounded

	// Rate-limit window: the unix second being counted and the count of
	// traces admitted within it. CAS on window resets the count.
	window atomic.Int64
	count  atomic.Uint64
}

// NewSampler builds a sampler admitting traces with probability rate
// (clamped to [0,1]) and at most limit traces per second (0 = no cap).
func NewSampler(rate float64, limit float64) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s := &Sampler{threshold: uint64(rate * (1 << 63))}
	if limit > 0 {
		s.limit = uint64(limit)
		if s.limit == 0 {
			s.limit = 1
		}
	}
	return s
}

// Rate returns the configured sampling probability.
func (s *Sampler) Rate() float64 { return float64(s.threshold) / (1 << 63) }

// Sample reports whether a decision beginning at now should be traced.
// Safe for concurrent use; lock-free.
func (s *Sampler) Sample(now time.Time) bool {
	if s.threshold == 0 {
		return false
	}
	// The draw runs on the cache-hit fast path of every decision, so it
	// must touch no shared memory: rand/v2's top-level source draws from
	// per-thread runtime state, where a sampler-owned atomic counter —
	// even a single contended Add, let alone a CAS loop — puts one cache
	// line into exclusive-ownership ping-pong across every checking core
	// and taxes the very load sampling exists to survive.
	if rand.Uint64()>>1 >= s.threshold {
		return false
	}
	if s.limit == 0 {
		return true
	}
	// Approximate fixed-window budget: the first caller to observe a new
	// second swings the window and resets the count. Racing resetters can
	// leak a few extra admits across the boundary — a bounded error that
	// keeps the limiter a pair of atomics instead of a lock.
	sec := now.Unix()
	if old := s.window.Load(); old != sec {
		if s.window.CompareAndSwap(old, sec) {
			s.count.Store(0)
		}
	}
	return s.count.Add(1) <= s.limit
}
