package obs

import "time"

// Observer bundles the metrics registry, the prebuilt engine
// instruments, and (optionally) the decision-trace ring. A nil
// *Observer disables all observability; a non-nil Observer with a nil
// Traces field enables metrics without tracing.
//
// The instrument fields form the documented metric catalog (see
// DESIGN.md §5.2); layers higher than the engine (audit log, security
// monitor, store counts) mirror their own counters in via OnScrape
// collectors or the Audit* instruments.
type Observer struct {
	Registry *Registry
	Traces   *TraceRing // nil = decision tracing off
	Sampler  *Sampler   // nil = trace every decision (no sampling)
	Slow     *SlowRing  // nil = slow-decision capture off

	// Decision path.
	DecisionLatency *HistogramVec // activerbac_decision_seconds{event}
	Decisions       *CounterVec   // activerbac_decisions_total{event,verdict}
	TracesTotal     *Counter      // activerbac_traces_total
	SlowDecisions   *Counter      // activerbac_slow_decisions_total

	// Stage-latency attribution: where a decision's wall-clock went.
	// The Vec is the registered family; the three fixed stages are
	// pre-resolved so the hot path observes without a label lookup.
	StageSeconds  *HistogramVec // activerbac_stage_seconds{stage}
	StageFastPath *Histogram    // stage="fastpath_probe": key encode + cache probe
	StageLaneWait *Histogram    // stage="lane_wait": queue time before drain
	StageCascade  *Histogram    // stage="cascade": raise-to-settle rule evaluation

	// Decision fast path (scrape-set from the cache's atomic counters).
	FastPathHits          *Counter // activerbac_fastpath_hits_total
	FastPathMisses        *Counter // activerbac_fastpath_misses_total
	FastPathBypass        *Counter // activerbac_fastpath_bypass_total
	FastPathInvalidations *Counter // activerbac_fastpath_invalidations_total
	SnapshotEpoch         *Gauge   // activerbac_snapshot_epoch

	// Batch decision path (counted per DecideCheckBatch call).
	BatchSize         *Histogram // activerbac_batch_size (distribution of tuples per batch)
	BatchGroups       *Counter   // activerbac_batch_groups_total
	BatchFastPathHits *Counter   // activerbac_batch_fastpath_hits_total

	// Lanes (wait observed at drain time; depth/throughput scrape-set).
	LaneWait      *HistogramVec // activerbac_lane_wait_seconds{lane}
	LaneDepth     *GaugeVec     // activerbac_lane_queue_depth{lane}
	LaneMaxDepth  *GaugeVec     // activerbac_lane_queue_max_depth{lane}
	LaneEnqueued  *CounterVec   // activerbac_lane_enqueued_total{lane}
	LaneProcessed *CounterVec   // activerbac_lane_processed_total{lane}

	// Event graph.
	OperatorMatches *CounterVec // activerbac_operator_matches_total{operator}
	EventsRaised    *Counter    // activerbac_events_raised_total
	EventsDetected  *Counter    // activerbac_events_detected_total

	// Rule pool (scrape-set from the pool's atomic per-rule counters).
	RuleFired       *CounterVec // activerbac_rule_fired_total{rule}
	RuleAllowed     *CounterVec // activerbac_rule_allowed_total{rule}
	RuleDenied      *CounterVec // activerbac_rule_denied_total{rule}
	RuleEvalSeconds *CounterVec // activerbac_rule_eval_seconds_total{rule}
	Rules           *Gauge      // activerbac_rules

	// RBAC store (scrape-set).
	Users    *Gauge // activerbac_users
	Roles    *Gauge // activerbac_roles
	Sessions *Gauge // activerbac_sessions

	// Active security (scrape-set by the facade).
	SecurityDenials *Counter // activerbac_security_denials_total
	SecurityAlerts  *Counter // activerbac_security_alerts_total

	// Audit log.
	AuditAppend  *Histogram // activerbac_audit_append_seconds
	AuditFlush   *Histogram // activerbac_audit_flush_seconds
	AuditRecords *Counter   // activerbac_audit_records_total

	// Static analysis (counted per analyzer run by the facade).
	AnalyzeFindings *CounterVec // activerbac_analyze_findings_total{code,severity}

	// Bounded verification (counted per verifier run by the facade).
	VerifyStates   *Counter    // activerbac_verify_states_total
	VerifyFindings *CounterVec // activerbac_verify_findings_total{code}
	VerifySeconds  *Histogram  // activerbac_verify_seconds

	// Wire transport (counted by rbacd's wire server hooks).
	WireRequests *CounterVec   // activerbac_wire_requests_total{opcode}
	WireErrors   *CounterVec   // activerbac_wire_errors_total{opcode}
	WireInflight *Gauge        // activerbac_wire_inflight
	WireRTT      *HistogramVec // activerbac_wire_rtt_seconds{opcode}

	// Epoch push (counted by rbacd's wire server hooks).
	WireSubscribers *Gauge   // activerbac_wire_subscribers
	EpochPushes     *Counter // activerbac_epoch_pushes_total

	// Embedded client cache (fed by client.Cache Instruments when an
	// embedding process wires them to an observer).
	ClientCacheHits          *Counter // activerbac_client_cache_hits_total
	ClientCacheMisses        *Counter // activerbac_client_cache_misses_total
	ClientCacheInvalidations *Counter // activerbac_client_cache_invalidations_total

	// Replication (fed by rbacd's replicate hooks: the Hub's on a
	// leader, the Replica's on a replica).
	ReplicaLag  *Gauge     // activerbac_replica_lag
	SyncTotal   *Counter   // activerbac_sync_total
	SyncBytes   *Counter   // activerbac_sync_bytes_total
	SyncSeconds *Histogram // activerbac_sync_seconds
}

// Stage label values of activerbac_stage_seconds.
const (
	StageNameFastPath = "fastpath_probe"
	StageNameLaneWait = "lane_wait"
	StageNameCascade  = "cascade"
)

// BatchSizeBuckets are the activerbac_batch_size histogram bounds:
// powers of two up to the wire protocol's batch cap.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// SampleTrace reports whether a decision beginning at the engine-clock
// instant now should record a cascade trace: every decision when no
// sampler is configured (the PR 2 behaviour), else the sampler's
// probabilistic + rate-limited verdict. Callers must already have
// checked that a trace ring exists.
func (o *Observer) SampleTrace(now time.Time) bool {
	if s := o.Sampler; s != nil {
		return s.Sample(now)
	}
	return true
}

// NewObserver builds a registry with the full metric catalog
// registered, plus a decision-trace ring of traceCapacity (0 disables
// tracing).
func NewObserver(traceCapacity int) *Observer {
	r := NewRegistry()
	o := &Observer{
		Registry: r,

		DecisionLatency: r.Histogram("activerbac_decision_seconds",
			"Wall-clock latency of one enforcement decision (Decide round trip).", nil, "event"),
		Decisions: r.Counter("activerbac_decisions_total",
			"Enforcement decisions by triggering event and verdict.", "event", "verdict"),
		TracesTotal: r.Counter("activerbac_traces_total",
			"Decision traces recorded into the ring buffer.").With(),
		SlowDecisions: r.Counter("activerbac_slow_decisions_total",
			"Decisions whose latency met or exceeded the slow threshold.").With(),

		FastPathHits: r.Counter("activerbac_fastpath_hits_total",
			"Decisions served from the fast-path cache.").With(),
		FastPathMisses: r.Counter("activerbac_fastpath_misses_total",
			"Cacheable decisions that ran the cascade and were considered for caching.").With(),
		FastPathBypass: r.Counter("activerbac_fastpath_bypass_total",
			"Decisions ineligible for the fast path (uncacheable event, rule set or parameters).").With(),
		FastPathInvalidations: r.Counter("activerbac_fastpath_invalidations_total",
			"Fast-path cache invalidations (whole-cache epoch bumps plus per-session bumps).").With(),
		SnapshotEpoch: r.Gauge("activerbac_snapshot_epoch",
			"Policy epoch of the RBAC store's published copy-on-write snapshot.").With(),

		BatchSize: r.Histogram("activerbac_batch_size",
			"Tuples per DecideCheckBatch call.", BatchSizeBuckets).With(),
		BatchGroups: r.Counter("activerbac_batch_groups_total",
			"Scope groups batches fanned out to (one lane crossing each).").With(),
		BatchFastPathHits: r.Counter("activerbac_batch_fastpath_hits_total",
			"Batch tuples served from the fast-path cache during the up-front probe.").With(),

		LaneWait: r.Histogram("activerbac_lane_wait_seconds",
			"Time a work item spent queued on a lane before draining.", nil, "lane"),
		LaneDepth: r.Gauge("activerbac_lane_queue_depth",
			"Current queue depth per enforcement lane.", "lane"),
		LaneMaxDepth: r.Gauge("activerbac_lane_queue_max_depth",
			"High-water queue depth per enforcement lane.", "lane"),
		LaneEnqueued: r.Counter("activerbac_lane_enqueued_total",
			"Work items enqueued per lane over its lifetime.", "lane"),
		LaneProcessed: r.Counter("activerbac_lane_processed_total",
			"Work items drained per lane over its lifetime.", "lane"),

		OperatorMatches: r.Counter("activerbac_operator_matches_total",
			"Composite-operator detections by operator kind.", "operator"),
		EventsRaised: r.Counter("activerbac_events_raised_total",
			"Primitive occurrences injected into the detector.").With(),
		EventsDetected: r.Counter("activerbac_events_detected_total",
			"All detected occurrences, primitive and composite.").With(),

		RuleFired: r.Counter("activerbac_rule_fired_total",
			"OWTE rule firings by rule name.", "rule"),
		RuleAllowed: r.Counter("activerbac_rule_allowed_total",
			"Rule firings whose conditions held (Then branch ran).", "rule"),
		RuleDenied: r.Counter("activerbac_rule_denied_total",
			"Rule firings routed to the Else branch.", "rule"),
		RuleEvalSeconds: r.Counter("activerbac_rule_eval_seconds_total",
			"Cumulative wall-clock time spent evaluating each rule (condition + actions).", "rule"),
		Rules: r.Gauge("activerbac_rules",
			"Rules currently in the pool.").With(),

		Users: r.Gauge("activerbac_users",
			"Users known to the RBAC store.").With(),
		Roles: r.Gauge("activerbac_roles",
			"Roles known to the RBAC store.").With(),
		Sessions: r.Gauge("activerbac_sessions",
			"Live sessions in the RBAC store.").With(),

		SecurityDenials: r.Counter("activerbac_security_denials_total",
			"Denials recorded by the active-security monitor.").With(),
		SecurityAlerts: r.Counter("activerbac_security_alerts_total",
			"Active-security alerts fired.").With(),

		AuditAppend: r.Histogram("activerbac_audit_append_seconds",
			"Latency of one audit-log append (buffered write).", nil).With(),
		AuditFlush: r.Histogram("activerbac_audit_flush_seconds",
			"Latency of one audit-log flush + fsync.", nil).With(),
		AuditRecords: r.Counter("activerbac_audit_records_total",
			"Records appended to the audit log.").With(),

		AnalyzeFindings: r.Counter("activerbac_analyze_findings_total",
			"Static-analysis findings observed, by finding code and severity.", "code", "severity"),

		VerifyStates: r.Counter("activerbac_verify_states_total",
			"States visited by the bounded symbolic verifier, cumulative over runs.").With(),
		VerifyFindings: r.Counter("activerbac_verify_findings_total",
			"Bounded-verification findings observed, by finding code.", "code"),
		VerifySeconds: r.Histogram("activerbac_verify_seconds",
			"Wall-clock duration of one bounded verification run (exploration plus counterexample replay).", nil).With(),

		WireRequests: r.Counter("activerbac_wire_requests_total",
			"Wire-protocol request frames decoded, by opcode.", "opcode"),
		WireErrors: r.Counter("activerbac_wire_errors_total",
			"Wire-protocol ERROR frames sent, by offending request opcode.", "opcode"),
		WireInflight: r.Gauge("activerbac_wire_inflight",
			"Wire-protocol requests admitted but not yet responded to.").With(),
		WireRTT: r.Histogram("activerbac_wire_rtt_seconds",
			"Server-side wire round trip per opcode: frame decoded to response flushed.", nil, "opcode"),

		WireSubscribers: r.Gauge("activerbac_wire_subscribers",
			"Connections currently subscribed to epoch pushes.").With(),
		EpochPushes: r.Counter("activerbac_epoch_pushes_total",
			"EPOCH_PUSH frames written to subscribers (coalesced per bump burst).").With(),

		ClientCacheHits: r.Counter("activerbac_client_cache_hits_total",
			"Checks served from the embedded client decision cache.").With(),
		ClientCacheMisses: r.Counter("activerbac_client_cache_misses_total",
			"Client-cache checks that went to the server.").With(),
		ClientCacheInvalidations: r.Counter("activerbac_client_cache_invalidations_total",
			"Wholesale client-cache drops: epoch pushes plus subscription losses.").With(),

		ReplicaLag: r.Gauge("activerbac_replica_lag",
			"Epoch distance between the observed leader push epoch and the locally applied one (replica mode).").With(),
		SyncTotal: r.Counter("activerbac_sync_total",
			"Policy-sync snapshot transfers (served on a leader, applied on a replica; acks excluded).").With(),
		SyncBytes: r.Counter("activerbac_sync_bytes_total",
			"Bytes of policy-sync snapshot payload transferred.").With(),
		SyncSeconds: r.Histogram("activerbac_sync_seconds",
			"Duration of one policy-sync transfer (serve time on a leader, transfer plus apply on a replica).", nil).With(),
	}
	o.StageSeconds = r.Histogram("activerbac_stage_seconds",
		"Decision latency attributed to one pipeline stage.", nil, "stage")
	o.StageFastPath = o.StageSeconds.With(StageNameFastPath)
	o.StageLaneWait = o.StageSeconds.With(StageNameLaneWait)
	o.StageCascade = o.StageSeconds.With(StageNameCascade)
	if traceCapacity > 0 {
		o.Traces = NewTraceRing(traceCapacity)
	}
	return o
}
