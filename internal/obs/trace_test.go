package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func TestTraceStepsOrdered(t *testing.T) {
	ring := NewTraceRing(4)
	tr := ring.Start("req.checkAccess", "s1", t0)
	tr.Add(t0, "scope-0", StepRaise, "req.checkAccess", "", "{session=s1}", true)
	tr.Add(t0.Add(time.Millisecond), "scope-0", StepCondition, "req.checkAccess", "CA1", "user IN userL", true)
	tr.Add(t0.Add(time.Millisecond), "scope-0", StepRule, "req.checkAccess", "CA1", "then", true)
	ring.Finish(tr, t0.Add(2*time.Millisecond))

	d, ok := ring.Get(tr.ID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if !d.Complete || d.Event != "req.checkAccess" || d.Scope != "s1" {
		t.Fatalf("trace = %+v", d)
	}
	if len(d.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(d.Steps))
	}
	for i, s := range d.Steps {
		if s.Seq != i {
			t.Fatalf("step %d has seq %d", i, s.Seq)
		}
		if i > 0 && s.At.Before(d.Steps[i-1].At) {
			t.Fatalf("step %d goes back in time", i)
		}
	}
	// Traces serialize cleanly for the HTTP API.
	if _, err := json.Marshal(d); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRingEviction(t *testing.T) {
	ring := NewTraceRing(2)
	var ids []uint64
	for i := 0; i < 3; i++ {
		tr := ring.Start("e", "", t0)
		ids = append(ids, tr.ID())
		ring.Finish(tr, t0)
	}
	if _, ok := ring.Get(ids[0]); ok {
		t.Fatal("oldest trace should have been evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := ring.Get(id); !ok {
			t.Fatalf("trace %d missing", id)
		}
	}
	recent := ring.Recent(0)
	if len(recent) != 2 || recent[0].ID != ids[2] || recent[1].ID != ids[1] {
		t.Fatalf("recent = %+v", recent)
	}
	if got := ring.Recent(1); len(got) != 1 || got[0].ID != ids[2] {
		t.Fatalf("recent(1) = %+v", got)
	}
}

func TestTraceConcurrentAdds(t *testing.T) {
	ring := NewTraceRing(1)
	tr := ring.Start("e", "", t0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.Add(t0, "global", StepCascade, "e2", "", "", true)
			}
		}()
	}
	wg.Wait()
	ring.Finish(tr, t0)
	d := tr.Snapshot()
	if len(d.Steps) != 4000 {
		t.Fatalf("steps = %d, want 4000", len(d.Steps))
	}
	for i, s := range d.Steps {
		if s.Seq != i {
			t.Fatalf("step %d has seq %d", i, s.Seq)
		}
	}
}
