package obs

import (
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	tid := NewTraceID()
	if tid.IsZero() {
		t.Fatal("NewTraceID returned the zero id")
	}
	s := tid.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex chars", s)
	}
	back, err := ParseTraceID(s)
	if err != nil || back != tid {
		t.Fatalf("ParseTraceID(%q) = (%v, %v), want original", s, back, err)
	}
	if (TraceID{}).String() != "" {
		t.Error("zero id must render empty")
	}
	for _, bad := range []string{"", "xyz", s[:31], s + "0", "ZZ" + s[2:]} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestTraceRingGetByTraceID(t *testing.T) {
	ring := NewTraceRing(4)
	tid := NewTraceID()
	tr := ring.StartID(tid, "checkAccess", "s1", time.Unix(0, 0))
	ring.Finish(tr, time.Unix(1, 0))
	td, ok := ring.GetByTraceID(tid)
	if !ok || td.TraceID != tid.String() {
		t.Fatalf("GetByTraceID = (%+v, %v)", td, ok)
	}
	if _, ok := ring.GetByTraceID(NewTraceID()); ok {
		t.Error("unknown id resolved")
	}
	if _, ok := ring.GetByTraceID(TraceID{}); ok {
		t.Error("zero id must never resolve")
	}
}

func TestSamplerRate(t *testing.T) {
	now := time.Unix(0, 0)
	// Rate 1 samples everything, rate 0 nothing.
	always := NewSampler(1, 0)
	never := NewSampler(0, 0)
	for i := 0; i < 100; i++ {
		if !always.Sample(now) {
			t.Fatal("rate-1 sampler rejected")
		}
		if never.Sample(now) {
			t.Fatal("rate-0 sampler accepted")
		}
	}
	// A fractional rate lands near its target over many draws. The band
	// is ~50 standard deviations wide, so any seed of the per-thread
	// source passes; a miss means the threshold math broke.
	s := NewSampler(0.1, 0)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Sample(now) {
			hits++
		}
	}
	if hits < n/20 || hits > n/5 {
		t.Fatalf("rate-0.1 sampler hit %d of %d", hits, n)
	}
}

func TestSamplerRateLimit(t *testing.T) {
	s := NewSampler(1, 3)
	sec0 := time.Unix(100, 0)
	hits := 0
	for i := 0; i < 50; i++ {
		if s.Sample(sec0) {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("limit-3 sampler admitted %d in one second", hits)
	}
	// A new second refills the budget.
	if !s.Sample(time.Unix(101, 0)) {
		t.Fatal("budget did not refill on the next second")
	}
}

func TestSlowRing(t *testing.T) {
	ring := NewSlowRing(2, 10*time.Millisecond)
	if ring.Exceeds(5 * time.Millisecond) {
		t.Error("5ms must not exceed a 10ms threshold")
	}
	if !ring.Exceeds(11 * time.Millisecond) {
		t.Error("11ms must exceed a 10ms threshold")
	}
	for i := 0; i < 3; i++ {
		ring.Record(SlowRecord{Event: "checkAccess", Seconds: float64(i)})
	}
	recs := ring.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("ring kept %d records, want capacity 2", len(recs))
	}
	// Newest first, oldest evicted.
	if recs[0].Seconds != 2 || recs[1].Seconds != 1 {
		t.Fatalf("recent order wrong: %+v", recs)
	}
	if got := ring.Recent(1); len(got) != 1 || got[0].Seconds != 2 {
		t.Fatalf("Recent(1) = %+v", got)
	}
}
