// Package parbac implements privacy-aware RBAC (He's extended RBAC
// model, cited as the paper's privacy extension): business purposes
// organized in a hierarchy, permissions bound to the purposes they may
// be exercised for, object-level consent requirements, and a
// purpose-aware access decision that layers on top of the core RBAC
// store.
//
// Semantics: a permission bound to purpose P may be exercised for P and
// for every descendant (more specific) purpose of P. An object marked
// consent-required additionally needs recorded data-subject consent for
// the requested purpose (or an ancestor of it).
package parbac

import (
	"fmt"
	"sort"
	"sync"

	"activerbac/internal/rbac"
)

// purpose is one node in the purpose tree.
type purpose struct {
	name     string
	parent   string
	children []string
}

// bindingKey addresses a purpose binding.
type bindingKey struct {
	Role rbac.RoleID
	Perm rbac.Permission
}

// consentKey addresses recorded consent.
type consentKey struct {
	Object  string
	Purpose string
}

// Manager is the privacy-aware RBAC layer.
type Manager struct {
	store *rbac.Store

	mu              sync.RWMutex
	purposes        map[string]*purpose
	bindings        map[bindingKey]map[string]struct{}
	consent         map[consentKey]struct{}
	consentRequired map[string]struct{}
}

// New builds an empty privacy layer over store.
func New(store *rbac.Store) *Manager {
	return &Manager{
		store:           store,
		purposes:        make(map[string]*purpose),
		bindings:        make(map[bindingKey]map[string]struct{}),
		consent:         make(map[consentKey]struct{}),
		consentRequired: make(map[string]struct{}),
	}
}

// ---------------------------------------------------------------------------
// Purpose tree

// AddPurpose registers a purpose; parent may be empty for a root
// purpose.
func (m *Manager) AddPurpose(name, parent string) error {
	if name == "" {
		return fmt.Errorf("parbac: empty purpose name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.purposes[name]; dup {
		return fmt.Errorf("parbac: purpose %q: %w", name, rbac.ErrExists)
	}
	if parent != "" {
		p, ok := m.purposes[parent]
		if !ok {
			return fmt.Errorf("parbac: parent purpose %q: %w", parent, rbac.ErrNotFound)
		}
		p.children = append(p.children, name)
	}
	m.purposes[name] = &purpose{name: name, parent: parent}
	return nil
}

// Purposes lists registered purpose names, sorted.
func (m *Manager) Purposes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.purposes))
	for n := range m.purposes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Covers reports whether an authorization for purpose allowed covers a
// request for purpose requested: equal, or requested is a descendant of
// allowed.
func (m *Manager) Covers(allowed, requested string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.coversLocked(allowed, requested)
}

func (m *Manager) coversLocked(allowed, requested string) bool {
	if _, ok := m.purposes[allowed]; !ok {
		return false
	}
	cur := requested
	for cur != "" {
		if cur == allowed {
			return true
		}
		p, ok := m.purposes[cur]
		if !ok {
			return false
		}
		cur = p.parent
	}
	return false
}

// ---------------------------------------------------------------------------
// Purpose bindings

// BindPurpose allows role r to exercise permission p for the given
// purpose (and its descendants). The role and purpose must exist; the
// permission need not be granted in the core store — the privacy layer
// is checked *in addition to* the core decision.
func (m *Manager) BindPurpose(r rbac.RoleID, p rbac.Permission, purposeName string) error {
	if !m.store.RoleExists(r) {
		return fmt.Errorf("parbac: role %q: %w", r, rbac.ErrNotFound)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.purposes[purposeName]; !ok {
		return fmt.Errorf("parbac: purpose %q: %w", purposeName, rbac.ErrNotFound)
	}
	k := bindingKey{Role: r, Perm: p}
	set := m.bindings[k]
	if set == nil {
		set = make(map[string]struct{})
		m.bindings[k] = set
	}
	if _, dup := set[purposeName]; dup {
		return fmt.Errorf("parbac: binding %v/%v/%q: %w", r, p, purposeName, rbac.ErrExists)
	}
	set[purposeName] = struct{}{}
	return nil
}

// UnbindPurpose removes a purpose binding.
func (m *Manager) UnbindPurpose(r rbac.RoleID, p rbac.Permission, purposeName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := bindingKey{Role: r, Perm: p}
	set := m.bindings[k]
	if _, ok := set[purposeName]; !ok {
		return fmt.Errorf("parbac: binding %v/%v/%q: %w", r, p, purposeName, rbac.ErrNotFound)
	}
	delete(set, purposeName)
	return nil
}

// AllowedPurposes lists the purposes role r may exercise p for, sorted.
func (m *Manager) AllowedPurposes(r rbac.RoleID, p rbac.Permission) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	set := m.bindings[bindingKey{Role: r, Perm: p}]
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Consent

// SetConsentRequired marks an object as needing data-subject consent.
func (m *Manager) SetConsentRequired(object string, required bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if required {
		m.consentRequired[object] = struct{}{}
	} else {
		delete(m.consentRequired, object)
	}
}

// GrantConsent records data-subject consent for using object for
// purposeName (and its descendants).
func (m *Manager) GrantConsent(object, purposeName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.purposes[purposeName]; !ok {
		return fmt.Errorf("parbac: purpose %q: %w", purposeName, rbac.ErrNotFound)
	}
	m.consent[consentKey{Object: object, Purpose: purposeName}] = struct{}{}
	return nil
}

// RevokeConsent withdraws previously granted consent.
func (m *Manager) RevokeConsent(object, purposeName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := consentKey{Object: object, Purpose: purposeName}
	if _, ok := m.consent[k]; !ok {
		return fmt.Errorf("parbac: consent %q/%q: %w", object, purposeName, rbac.ErrNotFound)
	}
	delete(m.consent, k)
	return nil
}

// hasConsentLocked reports whether consent on object covers purposeName.
func (m *Manager) hasConsentLocked(object, purposeName string) bool {
	for k := range m.consent {
		if k.Object == object && m.coversLocked(k.Purpose, purposeName) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Decision

// CheckPurposeAccess is the privacy-aware decision: may session sid
// exercise permission p for the stated purpose? It requires
//
//  1. some role active in the session (or a junior it inherits) to have
//     a purpose binding for p covering the purpose, and
//  2. when the object is consent-required, recorded consent covering
//     the purpose.
//
// On denial it returns a human-readable reason. It does not re-check the
// core RBAC permission — callers combine it with Store.CheckAccess.
func (m *Manager) CheckPurposeAccess(sid rbac.SessionID, p rbac.Permission, purposeName string) (string, bool) {
	m.mu.RLock()
	_, purposeKnown := m.purposes[purposeName]
	m.mu.RUnlock()
	if !purposeKnown {
		return fmt.Sprintf("unknown purpose %q", purposeName), false
	}

	roles, err := m.store.SessionRoles(sid)
	if err != nil {
		return fmt.Sprintf("unknown session %q", sid), false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	bound := false
	for _, r := range roles {
		// An active senior role exercises its juniors' bindings.
		desc, err := m.store.Descendants(r)
		if err != nil {
			continue
		}
		for _, dr := range desc {
			for allowed := range m.bindings[bindingKey{Role: dr, Perm: p}] {
				if m.coversLocked(allowed, purposeName) {
					bound = true
					break
				}
			}
			if bound {
				break
			}
		}
		if bound {
			break
		}
	}
	if !bound {
		return fmt.Sprintf("no active role permits %v for purpose %q", p, purposeName), false
	}
	if _, need := m.consentRequired[p.Object]; need && !m.hasConsentLocked(p.Object, purposeName) {
		return fmt.Sprintf("no consent recorded for %q with purpose %q", p.Object, purposeName), false
	}
	return "", true
}
