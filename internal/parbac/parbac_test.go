package parbac

import (
	"errors"
	"testing"

	"activerbac/internal/rbac"
)

// newHospital builds a small privacy-aware hospital: Doctor > Nurse
// hierarchy, purposes treatment > {diagnosis, billing-support} and
// marketing, with patient.dat consent-required.
func newHospital(t *testing.T) (*Manager, *rbac.Store, rbac.SessionID) {
	t.Helper()
	store := rbac.NewStore()
	for _, r := range []rbac.RoleID{"Doctor", "Nurse"} {
		if err := store.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.AddInheritance("Doctor", "Nurse"); err != nil {
		t.Fatal(err)
	}
	if err := store.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := store.AssignUser("alice", "Doctor"); err != nil {
		t.Fatal(err)
	}
	sid, err := store.CreateSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddActiveRole("alice", sid, "Doctor"); err != nil {
		t.Fatal(err)
	}

	m := New(store)
	for _, p := range []struct{ name, parent string }{
		{"treatment", ""},
		{"diagnosis", "treatment"},
		{"billing-support", "treatment"},
		{"marketing", ""},
	} {
		if err := m.AddPurpose(p.name, p.parent); err != nil {
			t.Fatal(err)
		}
	}
	return m, store, sid
}

var readPatient = rbac.Permission{Operation: "read", Object: "patient.dat"}

func TestAddPurposeValidation(t *testing.T) {
	m := New(rbac.NewStore())
	if err := m.AddPurpose("", ""); err == nil {
		t.Fatal("empty purpose accepted")
	}
	if err := m.AddPurpose("a", "ghost"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown parent: %v", err)
	}
	if err := m.AddPurpose("a", ""); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPurpose("a", ""); !errors.Is(err, rbac.ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if got := m.Purposes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Purposes = %v", got)
	}
}

func TestCovers(t *testing.T) {
	m, _, _ := newHospital(t)
	tests := []struct {
		allowed, requested string
		want               bool
	}{
		{"treatment", "treatment", true},
		{"treatment", "diagnosis", true},  // descendant covered
		{"diagnosis", "treatment", false}, // ancestor not covered
		{"treatment", "marketing", false}, // sibling tree
		{"marketing", "diagnosis", false}, //
		{"ghost", "treatment", false},     // unknown allowed
		{"treatment", "ghost", false},     // unknown requested
	}
	for _, tc := range tests {
		if got := m.Covers(tc.allowed, tc.requested); got != tc.want {
			t.Errorf("Covers(%q, %q) = %v, want %v", tc.allowed, tc.requested, got, tc.want)
		}
	}
}

func TestBindPurposeValidation(t *testing.T) {
	m, _, _ := newHospital(t)
	if err := m.BindPurpose("ghost", readPatient, "treatment"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown role: %v", err)
	}
	if err := m.BindPurpose("Doctor", readPatient, "ghost"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown purpose: %v", err)
	}
	if err := m.BindPurpose("Doctor", readPatient, "treatment"); err != nil {
		t.Fatal(err)
	}
	if err := m.BindPurpose("Doctor", readPatient, "treatment"); !errors.Is(err, rbac.ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if got := m.AllowedPurposes("Doctor", readPatient); len(got) != 1 || got[0] != "treatment" {
		t.Fatalf("AllowedPurposes = %v", got)
	}
	if err := m.UnbindPurpose("Doctor", readPatient, "treatment"); err != nil {
		t.Fatal(err)
	}
	if err := m.UnbindPurpose("Doctor", readPatient, "treatment"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("double unbind: %v", err)
	}
}

func TestCheckPurposeAccess(t *testing.T) {
	m, _, sid := newHospital(t)
	if err := m.BindPurpose("Doctor", readPatient, "treatment"); err != nil {
		t.Fatal(err)
	}
	if reason, ok := m.CheckPurposeAccess(sid, readPatient, "treatment"); !ok {
		t.Fatalf("treatment denied: %s", reason)
	}
	// Descendant purpose covered by the treatment binding.
	if reason, ok := m.CheckPurposeAccess(sid, readPatient, "diagnosis"); !ok {
		t.Fatalf("diagnosis denied: %s", reason)
	}
	// Unbound purpose denied.
	if _, ok := m.CheckPurposeAccess(sid, readPatient, "marketing"); ok {
		t.Fatal("marketing allowed without binding")
	}
	// Unknown purpose denied.
	if _, ok := m.CheckPurposeAccess(sid, readPatient, "ghost"); ok {
		t.Fatal("unknown purpose allowed")
	}
	// Unknown session denied.
	if _, ok := m.CheckPurposeAccess("zzz", readPatient, "treatment"); ok {
		t.Fatal("unknown session allowed")
	}
}

func TestPurposeBindingInheritedFromJunior(t *testing.T) {
	// The binding is on Nurse; an active Doctor (senior) exercises it.
	m, _, sid := newHospital(t)
	if err := m.BindPurpose("Nurse", readPatient, "treatment"); err != nil {
		t.Fatal(err)
	}
	if reason, ok := m.CheckPurposeAccess(sid, readPatient, "treatment"); !ok {
		t.Fatalf("senior denied junior's binding: %s", reason)
	}
}

func TestConsent(t *testing.T) {
	m, _, sid := newHospital(t)
	if err := m.BindPurpose("Doctor", readPatient, "treatment"); err != nil {
		t.Fatal(err)
	}
	m.SetConsentRequired("patient.dat", true)
	if _, ok := m.CheckPurposeAccess(sid, readPatient, "treatment"); ok {
		t.Fatal("consent-required object allowed without consent")
	}
	if err := m.GrantConsent("patient.dat", "ghost"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("consent for unknown purpose: %v", err)
	}
	if err := m.GrantConsent("patient.dat", "treatment"); err != nil {
		t.Fatal(err)
	}
	if reason, ok := m.CheckPurposeAccess(sid, readPatient, "treatment"); !ok {
		t.Fatalf("denied with consent: %s", reason)
	}
	// Consent for treatment covers the descendant purpose diagnosis.
	if reason, ok := m.CheckPurposeAccess(sid, readPatient, "diagnosis"); !ok {
		t.Fatalf("descendant purpose denied with ancestor consent: %s", reason)
	}
	if err := m.RevokeConsent("patient.dat", "treatment"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CheckPurposeAccess(sid, readPatient, "treatment"); ok {
		t.Fatal("allowed after consent revoked")
	}
	if err := m.RevokeConsent("patient.dat", "treatment"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("double revoke: %v", err)
	}
	// Turning the requirement off restores access.
	m.SetConsentRequired("patient.dat", false)
	if _, ok := m.CheckPurposeAccess(sid, readPatient, "treatment"); !ok {
		t.Fatal("denied after requirement removed")
	}
}

func TestConsentSpecificPurposeDoesNotCoverAncestor(t *testing.T) {
	m, _, sid := newHospital(t)
	if err := m.BindPurpose("Doctor", readPatient, "treatment"); err != nil {
		t.Fatal(err)
	}
	m.SetConsentRequired("patient.dat", true)
	if err := m.GrantConsent("patient.dat", "diagnosis"); err != nil {
		t.Fatal(err)
	}
	// Consent was given only for diagnosis: a general treatment request
	// must be denied.
	if _, ok := m.CheckPurposeAccess(sid, readPatient, "treatment"); ok {
		t.Fatal("specific consent covered the broader purpose")
	}
	if _, ok := m.CheckPurposeAccess(sid, readPatient, "diagnosis"); !ok {
		t.Fatal("specific consent did not cover its own purpose")
	}
}
