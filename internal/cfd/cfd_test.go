package cfd

import (
	"errors"
	"testing"
	"time"

	"activerbac/internal/clock"
	"activerbac/internal/event"
	"activerbac/internal/gtrbac"
	"activerbac/internal/rbac"
)

var t0 = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func newFixture(t *testing.T) (*Manager, *gtrbac.Manager, *rbac.Store, *event.Detector, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(t0)
	det := event.New(sim)
	store := rbac.NewStore()
	gt, err := gtrbac.New(det, store)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(det, store, gt)
	if err != nil {
		t.Fatal(err)
	}
	return m, gt, store, det, sim
}

func addRole(t *testing.T, store *rbac.Store, r rbac.RoleID) {
	t.Helper()
	if err := store.AddRole(r); err != nil {
		t.Fatal(err)
	}
}

// --------------------------------------------------------------------------
// Rule 8: SysAdmin/SysAudit coupling

func TestCoupleEnableBothEnable(t *testing.T) {
	m, gt, store, _, _ := newFixture(t)
	addRole(t, store, "SysAdmin")
	addRole(t, store, "SysAudit")
	if err := store.SetRoleEnabled("SysAdmin", false); err != nil {
		t.Fatal(err)
	}
	if err := store.SetRoleEnabled("SysAudit", false); err != nil {
		t.Fatal(err)
	}
	if err := m.CoupleEnable("SysAdmin", "SysAudit"); err != nil {
		t.Fatal(err)
	}
	if err := gt.EnableRole("SysAdmin"); err != nil {
		t.Fatal(err)
	}
	if !store.RoleEnabled("SysAdmin") || !store.RoleEnabled("SysAudit") {
		t.Fatalf("coupling: admin=%v audit=%v, want both enabled",
			store.RoleEnabled("SysAdmin"), store.RoleEnabled("SysAudit"))
	}
}

func TestCoupleFollowDisableRollsBackLead(t *testing.T) {
	m, gt, store, _, _ := newFixture(t)
	addRole(t, store, "SysAdmin")
	addRole(t, store, "SysAudit")
	if err := m.CoupleEnable("SysAdmin", "SysAudit"); err != nil {
		t.Fatal(err)
	}
	if err := gt.EnableRole("SysAdmin"); err != nil {
		t.Fatal(err)
	}
	// Disabling the audit role must take the admin role down with it:
	// "both or neither".
	if err := gt.DisableRole("SysAudit"); err != nil {
		t.Fatal(err)
	}
	if store.RoleEnabled("SysAdmin") {
		t.Fatal("lead stayed enabled after follow disabled")
	}
}

func TestCoupleValidation(t *testing.T) {
	m, _, store, _, _ := newFixture(t)
	addRole(t, store, "a")
	addRole(t, store, "b")
	if err := m.CoupleEnable("a", "ghost"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown follow: %v", err)
	}
	if err := m.CoupleEnable("a", "a"); err == nil {
		t.Fatal("self-coupling accepted")
	}
	if err := m.CoupleEnable("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.CoupleEnable("a", "b"); !errors.Is(err, rbac.ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if got := m.Couplings(); len(got) != 1 || got[0] != "a->b" {
		t.Fatalf("Couplings = %v", got)
	}
}

func TestCoupleMutual(t *testing.T) {
	// Mutual coupling a<->b must not recurse forever.
	m, gt, store, _, _ := newFixture(t)
	addRole(t, store, "a")
	addRole(t, store, "b")
	if err := store.SetRoleEnabled("a", false); err != nil {
		t.Fatal(err)
	}
	if err := store.SetRoleEnabled("b", false); err != nil {
		t.Fatal(err)
	}
	if err := m.CoupleEnable("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.CoupleEnable("b", "a"); err != nil {
		t.Fatal(err)
	}
	if err := gt.EnableRole("a"); err != nil {
		t.Fatal(err)
	}
	if !store.RoleEnabled("a") || !store.RoleEnabled("b") {
		t.Fatal("mutual coupling did not enable both")
	}
}

// --------------------------------------------------------------------------
// Rule 9: Manager / JuniorEmp dependency

func depFixture(t *testing.T) (*Manager, *rbac.Store, *event.Detector, rbac.SessionID, rbac.SessionID) {
	t.Helper()
	m, _, store, det, _ := newFixture(t)
	addRole(t, store, "Manager")
	addRole(t, store, "JuniorEmp")
	for _, u := range []rbac.UserID{"mgr", "jr"} {
		if err := store.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.AssignUser("mgr", "Manager"); err != nil {
		t.Fatal(err)
	}
	if err := store.AssignUser("jr", "JuniorEmp"); err != nil {
		t.Fatal(err)
	}
	mgrSid, err := store.CreateSession("mgr")
	if err != nil {
		t.Fatal(err)
	}
	jrSid, err := store.CreateSession("jr")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddActivationDependency("JuniorEmp", "Manager"); err != nil {
		t.Fatal(err)
	}
	return m, store, det, mgrSid, jrSid
}

// lifecycle mimics the enforcement layer raising lifecycle events.
func drop(t *testing.T, store *rbac.Store, det *event.Detector, u rbac.UserID, sid rbac.SessionID, r rbac.RoleID) {
	t.Helper()
	if err := store.DropActiveRole(u, sid, r); err != nil {
		t.Fatal(err)
	}
	if err := det.Raise(gtrbac.EvSessionRoleDropped, event.Params{
		"user": string(u), "session": string(sid), "role": string(r),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDependencyBlocksWithoutRequired(t *testing.T) {
	m, _, _, _, jrSid := depFixture(t)
	reason, ok := m.CanActivate(jrSid, "JuniorEmp")
	if ok {
		t.Fatal("junior activation allowed without manager")
	}
	if reason == "" {
		t.Fatal("empty denial reason")
	}
}

func TestDependencyAllowsWithRequired(t *testing.T) {
	m, store, _, mgrSid, jrSid := depFixture(t)
	if err := store.AddActiveRole("mgr", mgrSid, "Manager"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CanActivate(jrSid, "JuniorEmp"); !ok {
		t.Fatal("junior activation denied with manager active")
	}
}

func TestDependencyRevokesOnRequiredDrop(t *testing.T) {
	m, store, det, mgrSid, jrSid := depFixture(t)
	if err := store.AddActiveRole("mgr", mgrSid, "Manager"); err != nil {
		t.Fatal(err)
	}
	if err := store.AddActiveRole("jr", jrSid, "JuniorEmp"); err != nil {
		t.Fatal(err)
	}
	// Manager deactivates: the junior activation must be revoked.
	drop(t, store, det, "mgr", mgrSid, "Manager")
	if store.CheckSessionRole(jrSid, "JuniorEmp") {
		t.Fatal("junior activation survived manager deactivation")
	}
	if m.Revoked() != 1 {
		t.Fatalf("Revoked = %d", m.Revoked())
	}
}

func TestDependencySurvivesWhileAnotherRequiredActive(t *testing.T) {
	m, store, det, mgrSid, jrSid := depFixture(t)
	// Second manager session keeps the requirement satisfied.
	if err := store.AddUser("mgr2"); err != nil {
		t.Fatal(err)
	}
	if err := store.AssignUser("mgr2", "Manager"); err != nil {
		t.Fatal(err)
	}
	mgr2Sid, err := store.CreateSession("mgr2")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddActiveRole("mgr", mgrSid, "Manager"); err != nil {
		t.Fatal(err)
	}
	if err := store.AddActiveRole("mgr2", mgr2Sid, "Manager"); err != nil {
		t.Fatal(err)
	}
	if err := store.AddActiveRole("jr", jrSid, "JuniorEmp"); err != nil {
		t.Fatal(err)
	}
	drop(t, store, det, "mgr", mgrSid, "Manager")
	if !store.CheckSessionRole(jrSid, "JuniorEmp") {
		t.Fatal("junior revoked although another manager is active")
	}
	if m.Revoked() != 0 {
		t.Fatalf("Revoked = %d", m.Revoked())
	}
}

func TestDependencyValidation(t *testing.T) {
	m, _, store, _, _ := newFixture(t)
	addRole(t, store, "a")
	addRole(t, store, "b")
	if err := m.AddActivationDependency("a", "ghost"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown required: %v", err)
	}
	if err := m.AddActivationDependency("a", "a"); err == nil {
		t.Fatal("self-dependency accepted")
	}
	if err := m.AddActivationDependency("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddActivationDependency("a", "b"); !errors.Is(err, rbac.ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := m.RemoveActivationDependency("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveActivationDependency("a"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

// --------------------------------------------------------------------------
// Prerequisite roles

func TestPrerequisite(t *testing.T) {
	m, _, store, _, _ := newFixture(t)
	addRole(t, store, "roleA")
	addRole(t, store, "roleB")
	if err := store.AddUser("bob"); err != nil {
		t.Fatal(err)
	}
	for _, r := range []rbac.RoleID{"roleA", "roleB"} {
		if err := store.AssignUser("bob", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddPrerequisite("roleB", "roleA"); err != nil {
		t.Fatal(err)
	}
	sid, err := store.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CanActivate(sid, "roleB"); ok {
		t.Fatal("B activatable without prerequisite A")
	}
	if err := store.AddActiveRole("bob", sid, "roleA"); err != nil {
		t.Fatal(err)
	}
	if reason, ok := m.CanActivate(sid, "roleB"); !ok {
		t.Fatalf("B denied with A active: %s", reason)
	}
	// Prerequisite is per session: another session without A is denied.
	sid2, err := store.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CanActivate(sid2, "roleB"); ok {
		t.Fatal("prerequisite leaked across sessions")
	}
}

func TestPrerequisiteValidation(t *testing.T) {
	m, _, store, _, _ := newFixture(t)
	addRole(t, store, "a")
	addRole(t, store, "b")
	if err := m.AddPrerequisite("a", "ghost"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("unknown prereq: %v", err)
	}
	if err := m.AddPrerequisite("a", "a"); err == nil {
		t.Fatal("self-prerequisite accepted")
	}
	if err := m.AddPrerequisite("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPrerequisite("a", "b"); !errors.Is(err, rbac.ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestRemoveCouple(t *testing.T) {
	m, gt, store, _, _ := newFixture(t)
	addRole(t, store, "a")
	addRole(t, store, "b")
	if err := m.RemoveCouple("a", "b"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("remove of missing coupling: %v", err)
	}
	if err := m.CoupleEnable("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := store.SetRoleEnabled("a", false); err != nil {
		t.Fatal(err)
	}
	if err := store.SetRoleEnabled("b", false); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveCouple("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := m.Couplings(); len(got) != 0 {
		t.Fatalf("Couplings = %v", got)
	}
	// The subscriptions are detached: enabling a no longer drags b.
	if err := gt.EnableRole("a"); err != nil {
		t.Fatal(err)
	}
	if store.RoleEnabled("b") {
		t.Fatal("removed coupling still enforced")
	}
}

func TestRemovePrerequisite(t *testing.T) {
	m, _, store, _, _ := newFixture(t)
	addRole(t, store, "a")
	addRole(t, store, "b")
	if err := m.RemovePrerequisite("a", "b"); !errors.Is(err, rbac.ErrNotFound) {
		t.Fatalf("remove of missing prereq: %v", err)
	}
	if err := m.AddPrerequisite("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := m.RemovePrerequisite("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.CanActivate("s1", "a"); !ok {
		t.Fatal("removed prerequisite still enforced")
	}
}

func TestCanActivateUnconstrainted(t *testing.T) {
	m, _, store, _, _ := newFixture(t)
	addRole(t, store, "free")
	if _, ok := m.CanActivate("s1", "free"); !ok {
		t.Fatal("unconstrained role denied")
	}
}
