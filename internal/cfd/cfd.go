// Package cfd implements the control-flow-dependency constraints of the
// paper's Section 4.3.2/4.3.3 (after Joshi et al.'s GTRBAC dependency
// constraints):
//
//   - Post-condition coupling (Rule 8): if role A is enabled then role B
//     must be enabled too — both or neither. Enabling A cascades into
//     enabling B; if B cannot be enabled, A is rolled back; disabling B
//     disables A.
//   - Transaction-based activation (Rule 9): a dependent role may be
//     activated only while a required role is active somewhere in the
//     system; when the last activation of the required role ends, every
//     activation of the dependent role is revoked.
//   - Prerequisite roles (Section 3, SEQUENCE): a role may be activated
//     in a session only if another role is already active in the same
//     session.
package cfd

import (
	"fmt"
	"sort"
	"sync"

	"activerbac/internal/event"
	"activerbac/internal/gtrbac"
	"activerbac/internal/rbac"
)

// Manager tracks CFD constraints and enforces their reactive halves by
// subscribing to role lifecycle events.
type Manager struct {
	det   *event.Detector
	store *rbac.Store
	gt    *gtrbac.Manager

	mu sync.Mutex
	// couplings maps lead role -> follow roles (Rule 8).
	couplings map[rbac.RoleID][]rbac.RoleID
	// followers maps follow role -> lead roles (reverse index).
	followers map[rbac.RoleID][]rbac.RoleID
	// dependencies maps dependent role -> required role (Rule 9).
	dependencies map[rbac.RoleID]rbac.RoleID
	// prerequisites maps role -> same-session prerequisite roles.
	prerequisites map[rbac.RoleID][]rbac.RoleID
	// coupleSubs holds the event subscriptions backing each coupling,
	// so RemoveCouple can detach them.
	coupleSubs map[[2]rbac.RoleID][2]int
	// revoked counts dependent activations revoked by Rule 9.
	revoked uint64
	// enabling guards against coupling recursion loops.
	enabling map[rbac.RoleID]bool
}

// New builds a Manager and subscribes it to the session lifecycle
// events.
func New(det *event.Detector, store *rbac.Store, gt *gtrbac.Manager) (*Manager, error) {
	m := &Manager{
		det:           det,
		store:         store,
		gt:            gt,
		couplings:     make(map[rbac.RoleID][]rbac.RoleID),
		followers:     make(map[rbac.RoleID][]rbac.RoleID),
		dependencies:  make(map[rbac.RoleID]rbac.RoleID),
		prerequisites: make(map[rbac.RoleID][]rbac.RoleID),
		coupleSubs:    make(map[[2]rbac.RoleID][2]int),
		enabling:      make(map[rbac.RoleID]bool),
	}
	if _, err := det.Subscribe(gtrbac.EvSessionRoleDropped, m.onDropped); err != nil {
		return nil, err
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Rule 8: post-condition coupling

// CoupleEnable installs "if lead is enabled then follow must be
// enabled": enabling lead enables follow (rolling lead back if follow
// cannot enable), and disabling follow disables lead.
func (m *Manager) CoupleEnable(lead, follow rbac.RoleID) error {
	for _, r := range []rbac.RoleID{lead, follow} {
		if !m.store.RoleExists(r) {
			return fmt.Errorf("cfd: coupling role %q: %w", r, rbac.ErrNotFound)
		}
		if err := m.gt.RegisterRole(r); err != nil {
			return err
		}
	}
	if lead == follow {
		return fmt.Errorf("cfd: self-coupling on %q", lead)
	}
	m.mu.Lock()
	for _, f := range m.couplings[lead] {
		if f == follow {
			m.mu.Unlock()
			return fmt.Errorf("cfd: coupling %q -> %q: %w", lead, follow, rbac.ErrExists)
		}
	}
	m.couplings[lead] = append(m.couplings[lead], follow)
	m.followers[follow] = append(m.followers[follow], lead)
	m.mu.Unlock()

	enSub, err := m.det.Subscribe(gtrbac.EvRoleEnabled(lead), func(*event.Occurrence) {
		m.enforceCouple(lead, follow)
	})
	if err != nil {
		return err
	}
	disSub, err := m.det.Subscribe(gtrbac.EvRoleDisabled(follow), func(*event.Occurrence) {
		m.enforceFollowDisable(lead, follow)
	})
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.coupleSubs[[2]rbac.RoleID{lead, follow}] = [2]int{enSub, disSub}
	m.mu.Unlock()
	return nil
}

// RemoveCouple uninstalls a Rule 8 coupling.
func (m *Manager) RemoveCouple(lead, follow rbac.RoleID) error {
	key := [2]rbac.RoleID{lead, follow}
	m.mu.Lock()
	subs, ok := m.coupleSubs[key]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("cfd: coupling %q -> %q: %w", lead, follow, rbac.ErrNotFound)
	}
	delete(m.coupleSubs, key)
	m.couplings[lead] = removeRoleFrom(m.couplings[lead], follow)
	m.followers[follow] = removeRoleFrom(m.followers[follow], lead)
	m.mu.Unlock()
	m.det.Unsubscribe(gtrbac.EvRoleEnabled(lead), subs[0])
	m.det.Unsubscribe(gtrbac.EvRoleDisabled(follow), subs[1])
	return nil
}

// RemovePrerequisite uninstalls a prerequisite constraint.
func (m *Manager) RemovePrerequisite(role, prereq rbac.RoleID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	before := len(m.prerequisites[role])
	m.prerequisites[role] = removeRoleFrom(m.prerequisites[role], prereq)
	if len(m.prerequisites[role]) == before {
		return fmt.Errorf("cfd: prerequisite %q for %q: %w", prereq, role, rbac.ErrNotFound)
	}
	return nil
}

func removeRoleFrom(roles []rbac.RoleID, r rbac.RoleID) []rbac.RoleID {
	out := roles[:0]
	for _, x := range roles {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

// enforceCouple makes follow enabled after lead was enabled, rolling
// lead back on failure.
func (m *Manager) enforceCouple(lead, follow rbac.RoleID) {
	if m.store.RoleEnabled(follow) {
		return
	}
	m.mu.Lock()
	if m.enabling[follow] {
		m.mu.Unlock()
		return
	}
	m.enabling[follow] = true
	m.mu.Unlock()
	err := m.gt.EnableRole(follow)
	m.mu.Lock()
	delete(m.enabling, follow)
	m.mu.Unlock()
	if err != nil {
		// Cannot satisfy the post-condition: roll the lead back.
		_ = m.store.SetRoleEnabled(lead, false)
		_ = m.det.Raise(gtrbac.EvRoleDisabled(lead), event.Params{
			"role": string(lead), "reason": "cfd-rollback",
		})
	}
}

// enforceFollowDisable keeps the invariant when the follow role goes
// down: the lead must not stay enabled alone.
func (m *Manager) enforceFollowDisable(lead, follow rbac.RoleID) {
	if !m.store.RoleEnabled(lead) {
		return
	}
	_ = m.store.SetRoleEnabled(lead, false)
	_ = m.det.Raise(gtrbac.EvRoleDisabled(lead), event.Params{
		"role": string(lead), "reason": "cfd-follow-disabled",
	})
}

// Couplings lists installed couplings as "lead->follow" strings, sorted.
func (m *Manager) Couplings() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for lead, follows := range m.couplings {
		for _, f := range follows {
			out = append(out, string(lead)+"->"+string(f))
		}
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Rule 9: transaction-based activation dependency

// AddActivationDependency installs "dependent may be active only while
// required is active somewhere". A role has at most one required role.
func (m *Manager) AddActivationDependency(dependent, required rbac.RoleID) error {
	for _, r := range []rbac.RoleID{dependent, required} {
		if !m.store.RoleExists(r) {
			return fmt.Errorf("cfd: dependency role %q: %w", r, rbac.ErrNotFound)
		}
	}
	if dependent == required {
		return fmt.Errorf("cfd: self-dependency on %q", dependent)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.dependencies[dependent]; dup {
		return fmt.Errorf("cfd: dependency for %q: %w", dependent, rbac.ErrExists)
	}
	m.dependencies[dependent] = required
	return nil
}

// RemoveActivationDependency uninstalls the Rule 9 constraint.
func (m *Manager) RemoveActivationDependency(dependent rbac.RoleID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dependencies[dependent]; !ok {
		return fmt.Errorf("cfd: dependency for %q: %w", dependent, rbac.ErrNotFound)
	}
	delete(m.dependencies, dependent)
	return nil
}

// AddPrerequisite installs "role may be activated in a session only if
// prereq is already active in that session" (prerequisite roles).
func (m *Manager) AddPrerequisite(role, prereq rbac.RoleID) error {
	for _, r := range []rbac.RoleID{role, prereq} {
		if !m.store.RoleExists(r) {
			return fmt.Errorf("cfd: prerequisite role %q: %w", r, rbac.ErrNotFound)
		}
	}
	if role == prereq {
		return fmt.Errorf("cfd: self-prerequisite on %q", role)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.prerequisites[role] {
		if p == prereq {
			return fmt.Errorf("cfd: prerequisite %q for %q: %w", prereq, role, rbac.ErrExists)
		}
	}
	m.prerequisites[role] = append(m.prerequisites[role], prereq)
	return nil
}

// CanActivate is the predicate generated activation rules evaluate: it
// checks Rule 9 dependencies (required role active somewhere) and
// prerequisite roles (active in the same session). On denial it returns
// a human-readable reason.
func (m *Manager) CanActivate(sid rbac.SessionID, role rbac.RoleID) (string, bool) {
	m.mu.Lock()
	required, hasDep := m.dependencies[role]
	prereqs := append([]rbac.RoleID(nil), m.prerequisites[role]...)
	m.mu.Unlock()

	if hasDep && m.store.RoleActiveCount(required) == 0 {
		return fmt.Sprintf("role %q requires role %q to be active", role, required), false
	}
	for _, p := range prereqs {
		if !m.store.CheckSessionRole(sid, p) {
			return fmt.Sprintf("role %q requires prerequisite role %q active in this session", role, p), false
		}
	}
	return "", true
}

// onDropped revokes dependent activations when the last activation of a
// required role ends (the terminating half of Rule 9).
func (m *Manager) onDropped(o *event.Occurrence) {
	dropped := rbac.RoleID(stringParam(o, "role"))
	if dropped == "" || m.store.RoleActiveCount(dropped) > 0 {
		return
	}
	m.mu.Lock()
	var dependents []rbac.RoleID
	for dep, req := range m.dependencies {
		if req == dropped {
			dependents = append(dependents, dep)
		}
	}
	m.mu.Unlock()
	for _, dep := range dependents {
		for _, sid := range m.store.SessionsWithRole(dep) {
			user, err := m.store.SessionUser(sid)
			if err != nil {
				continue
			}
			if err := m.store.RawDropSessionRole(sid, dep); err != nil {
				continue
			}
			m.mu.Lock()
			m.revoked++
			m.mu.Unlock()
			_ = m.det.Raise(gtrbac.EvSessionRoleDropped, event.Params{
				"user": string(user), "session": string(sid), "role": string(dep),
				"reason": "cfd-dependency-revoked",
			})
		}
	}
}

// Revoked reports how many dependent activations Rule 9 revoked.
func (m *Manager) Revoked() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.revoked
}

func stringParam(o *event.Occurrence, key string) string {
	if o == nil || o.Params == nil {
		return ""
	}
	s, _ := o.Params[key].(string)
	return s
}
