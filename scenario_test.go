package activerbac_test

// A week at Mercy General Hospital: one policy exercising every feature
// of the system together — hierarchies, SSD/DSD, cardinality, shifts,
// durations, time SoD, CFD dependencies, context, privacy, active
// security, periodic reports — driven through a simulated week and
// checked at each stage. This is the repository's end-to-end narrative
// test: if a cross-feature interaction regresses, it surfaces here.

import (
	"errors"
	"testing"
	"time"

	"activerbac"
)

const hospitalWeekPolicy = `
policy "mercy-general"

role ChiefOfMedicine
role Doctor
role Nurse
role DayDoctor
role Pharmacist
role Auditor
role BillingClerk

hierarchy ChiefOfMedicine > Doctor > Nurse

# A pharmacist must never also audit the pharmacy.
ssd pharmacy-audit 2: Pharmacist, Auditor
# Billing and auditing must not happen in one session.
dsd billing-audit 2: BillingClerk, Auditor

permission Doctor: prescribe medication
permission Nurse: read chart.dat
permission Pharmacist: dispense medication
permission Auditor: read ledger.dat
permission BillingClerk: write ledger.dat

user chief: ChiefOfMedicine
user dora: Doctor
user nick: Nurse
user dana: DayDoctor
user phil: Pharmacist
user ada: Auditor, BillingClerk

cardinality ChiefOfMedicine 1
maxroles ada 1

shift DayDoctor 08:00:00-18:00:00
duration * Nurse 8h
timesod ward-coverage 08:00:00-18:00:00: Nurse, Doctor

require DayDoctor needs-active ChiefOfMedicine
context Pharmacist requires pharmacy = open

purpose treatment
purpose diagnosis < treatment
bind Nurse read chart.dat for treatment
consent-required chart.dat

threshold probes 4 in 30m: lock-user
report daily every 24h
`

func TestHospitalWeek(t *testing.T) {
	monday := time.Date(2026, 7, 6, 7, 0, 0, 0, time.UTC) // 07:00 Monday
	sim := activerbac.NewSimClock(monday)
	sys, err := activerbac.Open(hospitalWeekPolicy, &activerbac.Options{Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var reports []activerbac.SystemReport
	sys.OnReport(func(r activerbac.SystemReport) { reports = append(reports, r) })

	at := func(day int, h, m int) time.Time {
		return time.Date(2026, 7, 6+day, h, m, 0, 0, time.UTC)
	}
	perm := func(op, obj string) activerbac.Permission {
		return activerbac.Permission{Operation: op, Object: obj}
	}

	// --- Monday 07:00: before the day shift -----------------------------
	danaSid, err := sys.CreateSession("dana")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("dana", danaSid, "DayDoctor"); err == nil {
		t.Fatal("DayDoctor active before the 08:00 shift")
	}

	// --- Monday 08:30: shift open, but Rule 9 needs the chief ----------
	sim.AdvanceTo(at(0, 8, 30))
	if err := sys.AddActiveRole("dana", danaSid, "DayDoctor"); !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("DayDoctor without chief: %v", err)
	}
	chiefSid, err := sys.CreateSession("chief")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("chief", chiefSid, "ChiefOfMedicine"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("dana", danaSid, "DayDoctor"); err != nil {
		t.Fatalf("DayDoctor with chief active: %v", err)
	}

	// --- Monday 09:00: the nurse starts; privacy needs consent ---------
	sim.AdvanceTo(at(0, 9, 0))
	nickSid, err := sys.CreateSession("nick")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("nick", nickSid, "Nurse"); err != nil {
		t.Fatal(err)
	}
	if sys.CheckAccessForPurpose(nickSid, perm("read", "chart.dat"), "treatment") {
		t.Fatal("chart read without patient consent")
	}
	if err := sys.GrantConsent("chart.dat", "treatment"); err != nil {
		t.Fatal(err)
	}
	if !sys.CheckAccessForPurpose(nickSid, perm("read", "chart.dat"), "diagnosis") {
		t.Fatal("chart read denied despite consent (diagnosis < treatment)")
	}

	// --- Monday 12:00: pharmacy opens; context gates phil ---------------
	sim.AdvanceTo(at(0, 12, 0))
	philSid, err := sys.CreateSession("phil")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("phil", philSid, "Pharmacist"); err == nil {
		t.Fatal("Pharmacist active while the pharmacy is closed")
	}
	if err := sys.SetContext("pharmacy", "open"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("phil", philSid, "Pharmacist"); err != nil {
		t.Fatal(err)
	}
	// SSD: phil can never be assigned the Auditor role.
	if err := sys.AssignUser("phil", "Auditor"); !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("pharmacy-audit SSD: %v", err)
	}

	// --- Monday 14:00: ada audits; DSD and maxroles hold ----------------
	adaSid, err := sys.CreateSession("ada")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("ada", adaSid, "Auditor"); err != nil {
		t.Fatal(err)
	}
	// maxroles ada 1 vetoes a second active role before DSD even gets a
	// say.
	if err := sys.AddActiveRole("ada", adaSid, "BillingClerk"); !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("ada second role: %v", err)
	}

	// --- Monday 15:00: ward time-SoD keeps one role enabled -------------
	sim.AdvanceTo(at(0, 15, 0))
	if err := sys.DisableRole("Doctor"); err != nil {
		t.Fatal(err)
	}
	if err := sys.DisableRole("Nurse"); !errors.Is(err, activerbac.ErrDenied) {
		t.Fatalf("ward left uncovered: %v", err)
	}
	if err := sys.EnableRole("Doctor"); err != nil {
		t.Fatal(err)
	}

	// --- Monday 17:10: nick's 8h duration bound expired ------------------
	sim.AdvanceTo(at(0, 17, 10))
	if roles, _ := sys.SessionRoles(nickSid); len(roles) != 0 {
		t.Fatalf("nurse still active after 8h: %v", roles)
	}

	// --- Monday 18:05: shift closed; mallory-style probing begins -------
	sim.AdvanceTo(at(0, 18, 5))
	if sys.RoleEnabled("DayDoctor") {
		t.Fatal("DayDoctor enabled after 18:00")
	}
	evilSid, err := sys.CreateSession("phil")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sys.CheckAccess(evilSid, perm("read", "payroll.db"))
	}
	if !sys.UserLocked("phil") {
		t.Fatal("probing user not locked")
	}
	if len(sys.Alerts()) != 1 {
		t.Fatalf("alerts = %v", sys.Alerts())
	}
	if err := sys.UnlockUser("phil"); err != nil {
		t.Fatal(err)
	}

	// --- The rest of the week: daily reports accumulate ------------------
	sim.AdvanceTo(at(6, 23, 0))
	if len(reports) != 6 {
		t.Fatalf("daily reports = %d, want 6 over the week", len(reports))
	}
	if reports[len(reports)-1].Denials == 0 {
		t.Fatal("weekly report shows no denials despite the probing")
	}

	// --- Friday: HR reorganizes via policy edit --------------------------
	edited := hospitalWeekPolicy + "role Intern\nhierarchy Nurse > Intern\nuser izzy: Intern\n"
	rep, err := sys.ApplyPolicy(edited)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.RolesAdded) != 1 || rep.RolesAdded[0] != "Intern" {
		t.Fatalf("reorg report: %+v", rep)
	}
	izzySid, err := sys.CreateSession("izzy")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("izzy", izzySid, "Intern"); err != nil {
		t.Fatal(err)
	}

	// --- End of week: the system is internally consistent ----------------
	if errs := sys.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants: %v", errs)
	}
	if errs := sys.VerifyRules(); len(errs) != 0 {
		t.Fatalf("rule verification: %v", errs)
	}
}
