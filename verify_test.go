package activerbac

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"activerbac/internal/policy"
)

// Fixture policies mirror the reach package's golden set; here they run
// through the full pipeline including differential replay.
const (
	dsdBypassPolicy = `
policy "dsd-bypass"
role Teller
role Auditor
dsd bank 2: Teller, Auditor
permission Teller: write ledger.dat
permission Auditor: audit ledger.dat
user bob: Teller, Auditor
`
	cardBypassPolicy = `
policy "card-bypass"
role Director
role PM
hierarchy Director > PM
cardinality PM 1
permission PM: approve po.dat
user ann: Director
user ben: PM
`
	windowEscapePolicy = `
policy "window-escape"
role DayDoctor
shift DayDoctor 09:00:00-17:00:00
permission DayDoctor: read chart.dat
user dora: DayDoctor
`
	cleanVerifyPolicy = `
policy "clean"
role Manager
role Clerk
hierarchy Manager > Clerk
permission Manager: approve po.dat
permission Clerk: write po.dat
user meg: Manager
user carl: Clerk
`
)

func verifyFixture(t *testing.T, src, wantCode string) VerifyFinding {
	t.Helper()
	res, err := VerifyPolicy(src, VerifyConfig{})
	if err != nil {
		t.Fatalf("VerifyPolicy: %v", err)
	}
	var found *VerifyFinding
	for i, f := range res.Findings {
		if f.Code == "RV199" {
			t.Fatalf("self-check failure: %s", f.String())
		}
		if f.Code == wantCode && found == nil {
			found = &res.Findings[i]
		}
	}
	if found == nil {
		t.Fatalf("no %s finding in %v", wantCode, res.Findings)
	}
	if found.Counterexample == nil {
		t.Fatalf("%s finding without counterexample", wantCode)
	}
	return *found
}

// Every emitted counterexample must already have reproduced its
// violation against a real engine — the absence of RV199 here IS the
// differential test. Run under -race via the normal test suite.
func TestVerifyReplaysDSoDBypass(t *testing.T)       { verifyFixture(t, dsdBypassPolicy, "RV101") }
func TestVerifyReplaysCardinalityBypass(t *testing.T) { verifyFixture(t, cardBypassPolicy, "RV102") }
func TestVerifyReplaysWindowEscape(t *testing.T)     { verifyFixture(t, windowEscapePolicy, "RV103") }

func TestVerifyCleanPolicy(t *testing.T) {
	res, err := VerifyPolicy(cleanVerifyPolicy, VerifyConfig{})
	if err != nil {
		t.Fatalf("VerifyPolicy: %v", err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("clean policy has findings: %v", res.Findings)
	}
	if res.States == 0 {
		t.Fatal("no states explored")
	}
}

func TestVerifyDeterministic(t *testing.T) {
	for _, src := range []string{dsdBypassPolicy, cardBypassPolicy, windowEscapePolicy} {
		a, err := VerifyPolicy(src, VerifyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := VerifyPolicy(src, VerifyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("nondeterministic verification:\n%+v\nvs\n%+v", a, b)
		}
	}
}

// RV000: checker-rejected policies come back as findings, not errors.
func TestVerifyCheckerErrors(t *testing.T) {
	res, err := VerifyPolicy("policy \"bad\"\nrole A\nhierarchy A > B\n", VerifyConfig{})
	if err != nil {
		t.Fatalf("VerifyPolicy: %v", err)
	}
	if len(res.Findings) == 0 || res.Findings[0].Code != "RV000" {
		t.Fatalf("want RV000, got %v", res.Findings)
	}
}

// A corrupted counterexample must fail replay — the self-check that
// backs RV199.
func TestReplayRejectsCorruptedCounterexample(t *testing.T) {
	f := verifyFixture(t, dsdBypassPolicy, "RV101")
	spec, err := policy.ParseString(dsdBypassPolicy)
	if err != nil {
		t.Fatal(err)
	}
	anchor := time.Date(2024, time.January, 1, 0, 0, 0, 0, time.UTC)

	// Sanity: the untouched counterexample replays.
	if err := replayCounterexample(spec, dsdBypassPolicy, f.Counterexample, anchor); err != nil {
		t.Fatalf("genuine counterexample failed replay: %v", err)
	}

	// Dropping the final activation leaves the violation unreached.
	truncated := *f.Counterexample
	truncated.Steps = truncated.Steps[:len(truncated.Steps)-1]
	if err := replayCounterexample(spec, dsdBypassPolicy, &truncated, anchor); err == nil {
		t.Fatal("truncated counterexample replayed without error")
	}

	// An impossible step (activating both conflicting roles in one
	// session) must be refused by the engine.
	bogus := *f.Counterexample
	bogus.Steps = append([]VerifyStep{}, bogus.Steps...)
	last := bogus.Steps[len(bogus.Steps)-1]
	first := bogus.Steps[len(bogus.Steps)-2]
	last.Session = first.Session // same session now
	bogus.Steps[len(bogus.Steps)-1] = last
	if err := replayCounterexample(spec, dsdBypassPolicy, &bogus, anchor); err == nil {
		t.Fatal("engine accepted a same-session DSoD violation during replay")
	} else if !strings.Contains(err.Error(), "activate") {
		t.Fatalf("unexpected replay error: %v", err)
	}
}

// System.Verify counts findings and run stats into the metrics
// registry.
func TestSystemVerifyMetrics(t *testing.T) {
	sys, err := Open(dsdBypassPolicy, &Options{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.Verify(VerifyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !HasVerifyErrors(res.Findings) {
		t.Fatalf("expected error findings, got %v", res.Findings)
	}
	var out strings.Builder
	if err := sys.WriteMetrics(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"activerbac_verify_states_total",
		`activerbac_verify_findings_total{code="RV101"}`,
		"activerbac_verify_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %s", want)
		}
	}
}
