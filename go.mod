module activerbac

go 1.22
