package activerbac_test

import (
	"strings"
	"testing"

	"activerbac"
)

// TestCheckAccessBatchMatchesSequential: the facade batch path must
// agree with CheckAccessTuple on every element, in input order, with
// duplicates and unknown sessions included, both cold and with the
// fast path warm.
func TestCheckAccessBatchMatchesSequential(t *testing.T) {
	sys, err := activerbac.Open(xyzPolicy, &activerbac.Options{
		Clock:    activerbac.NewSimClock(t0),
		FastPath: true,
		Metrics:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	bobSid, err := sys.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("bob", bobSid, "PC"); err != nil {
		t.Fatal(err)
	}
	aliceSid, err := sys.CreateSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddActiveRole("alice", aliceSid, "PM"); err != nil {
		t.Fatal(err)
	}

	checks := []activerbac.BatchCheck{
		{Session: string(bobSid), Operation: "write", Object: "purchase-order.dat"},
		{Session: string(aliceSid), Operation: "read", Object: "lobby.txt"},
		{Session: string(bobSid), Operation: "approve", Object: "purchase-order.dat"},
		{Session: string(bobSid), Operation: "write", Object: "purchase-order.dat"}, // duplicate of [0]
		{Session: "no-such-session", Operation: "read", Object: "lobby.txt"},
		{Session: string(aliceSid), Operation: "read", Object: "lobby.txt"}, // duplicate of [1]
	}
	want := make([]bool, len(checks))
	for i, c := range checks {
		want[i] = sys.CheckAccessTuple(c.Session, c.Operation, c.Object)
	}

	// Two rounds: the first populates the fast path, the second must be
	// served (at least partly) from it — same verdicts either way.
	buf := make([]bool, 0, len(checks))
	for round := 0; round < 2; round++ {
		got := sys.CheckAccessBatch(checks, buf[:0])
		if len(got) != len(want) {
			t.Fatalf("round %d: %d verdicts, want %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("round %d: verdict[%d] = %v, want %v (%+v)", round, i, got[i], want[i], checks[i])
			}
		}
		if cap(got) != cap(buf) {
			t.Errorf("round %d: verdict slice reallocated (cap %d, want %d)", round, cap(got), cap(buf))
		}
	}

	stats, err := sys.FastPathStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits == 0 {
		t.Errorf("fast path saw no hits across warm batch round: %+v", stats)
	}

	var sb strings.Builder
	if err := sys.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, metric := range []string{
		"activerbac_batch_size_sum",
		"activerbac_batch_groups_total",
		"activerbac_batch_fastpath_hits_total",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %s", metric)
		}
	}
}

// TestCheckAccessBatchEmpty: zero checks answer zero verdicts without
// touching the engine.
func TestCheckAccessBatchEmpty(t *testing.T) {
	sys := openXYZ(t)
	if got := sys.CheckAccessBatch(nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
}
