# Developer entry points. `make check` is the tier-1 gate from
# ROADMAP.md: build, tests, race detector, vet, lint, plus one-round
# bench smokes (fast path, wire transports, batch, telemetry overhead)
# and a short wire-codec fuzz so the cached, uncached and remote decide
# paths are exercised end to end on every merge.

GO ?= go

.PHONY: build test race vet lint check verify-policies fuzz-wire bench-smoke bench bench-obs bench-obs-smoke bench-fastpath bench-fastpath-smoke bench-wire bench-wire-smoke bench-batch bench-batch-smoke bench-client bench-client-smoke bench-replica bench-replica-smoke bench-compare clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The lane-sharded engine is concurrent; the race detector is part of
# the merge gate, not an optional extra.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own static analysis: go vet plus rbacvet, the
# custom passes enforcing engine invariants (engine-clock discipline,
# observer nil guards, lane lock order, snapshot immutability).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/rbacvet ./...

check: build test race vet lint verify-policies fuzz-wire bench-fastpath-smoke bench-wire-smoke bench-client-smoke bench-batch-smoke bench-obs-smoke bench-replica-smoke

# verify-policies runs the bounded symbolic verifier over every example
# policy. Files named *-violating.acp are seeded-unsafe fixtures and
# MUST be rejected (error-severity finding, non-zero exit); every other
# policy must verify clean at error severity. Findings go to
# verify-findings.log so CI can upload them when the gate fails.
verify-policies: build
	@rm -f verify-findings.log
	@status=0; \
	for f in examples/policies/*.acp; do \
		case "$$f" in \
		*-violating.acp) \
			if $(GO) run ./cmd/policyc -verify "$$f" >>verify-findings.log 2>&1; then \
				echo "verify-policies: FAIL $$f (seeded violation not caught)"; status=1; \
			else \
				echo "verify-policies: ok   $$f (rejected as expected)"; \
			fi ;; \
		*) \
			if $(GO) run ./cmd/policyc -verify "$$f" >>verify-findings.log 2>&1; then \
				echo "verify-policies: ok   $$f"; \
			else \
				echo "verify-policies: FAIL $$f"; status=1; \
			fi ;; \
		esac; \
	done; \
	if [ $$status -ne 0 ]; then echo "verify-policies: findings in verify-findings.log"; fi; \
	exit $$status

# fuzz-wire gives each wire-codec fuzz target a short randomized budget
# on top of the checked-in seed corpus (internal/wire/testdata/fuzz):
# enough to catch a regressed panic path without stalling the gate.
fuzz-wire:
	$(GO) test ./internal/wire -fuzz=FuzzDecoder -fuzztime=5s
	$(GO) test ./internal/wire -fuzz=FuzzPayloadCodecs -fuzztime=5s
	$(GO) test ./internal/wire -fuzz=FuzzCheckRoundTrip -fuzztime=5s

# bench-smoke runs the cheap experiments to confirm the bench harness
# still works; `make bench` regenerates everything (slow).
bench-smoke: build
	$(GO) run ./cmd/bench -exp F1
	$(GO) run ./cmd/bench -exp E1P

bench: build
	$(GO) run ./cmd/bench

# bench-obs regenerates the observability-overhead series (BENCH_obs.json):
# the E1P parallel workload under tracing off / metrics / sampled / ring /
# full, on the uncached and verdict-cached paths. The smoke variant runs
# one short round and leaves the committed JSON untouched.
bench-obs: build
	$(GO) run ./cmd/bench -exp OBS

bench-obs-smoke: build
	$(GO) run ./cmd/bench -exp OBS -smoke

# bench-fastpath regenerates the decision fast-path series
# (BENCH_fastpath.json): the E1P parallel workload with the verdict
# cache off and on. The smoke variant runs one short round and leaves
# the committed JSON untouched.
bench-fastpath: build
	$(GO) run ./cmd/bench -exp FASTPATH

bench-fastpath-smoke: build
	$(GO) run ./cmd/bench -exp FASTPATH -smoke

# bench-wire regenerates the remote-transport series (BENCH_wire.json):
# the same live engine checked over HTTP/JSON, single wire frames, wire
# batches, and the embedded client decision cache (the client_cached
# series — repeat allows served locally under epoch-push invalidation).
# The smoke variant runs one short round and leaves the committed JSON
# untouched.
bench-wire: build
	$(GO) run ./cmd/bench -exp WIRE

bench-wire-smoke: build
	$(GO) run ./cmd/bench -exp WIRE -smoke

# bench-client produces the client_cached transport series: it rides
# the WIRE experiment (one shared live engine keeps the four series
# comparable), so these are dependency aliases — `make check` lists
# bench-client-smoke explicitly, and make runs the shared recipe once.
bench-client: bench-wire

bench-client-smoke: bench-wire-smoke

# bench-batch regenerates the batch-native series (BENCH_batch.json):
# per-tuple loops vs CheckAccessBatch in process, and the PR 5 per-tuple
# CHECK_BATCH fan-out vs the batch-native backend over the wire. The
# smoke variant runs one short round and leaves the committed JSON
# untouched.
bench-batch: build
	$(GO) run ./cmd/bench -exp BATCH

bench-batch-smoke: build
	$(GO) run ./cmd/bench -exp BATCH -smoke

# bench-replica regenerates the replicated-read-fleet series
# (BENCH_replica.json): one leader streaming real wire SYNC snapshots
# to four fixed-capacity replicas, aggregate read throughput measured
# at fleet sizes 1/2/4 (see the capacity-model note on replicaBench).
# The smoke variant syncs a two-replica fleet and runs one short round.
bench-replica: build
	$(GO) run ./cmd/bench -exp REPLICA

bench-replica-smoke: build
	$(GO) run ./cmd/bench -exp REPLICA -smoke

# bench-compare diffs two benchmark JSON series benchstat-style, e.g.
#   make bench-compare OLD=BENCH_lanes.json NEW=BENCH_fastpath.json
OLD ?= BENCH_lanes.json
NEW ?= BENCH_fastpath.json
bench-compare: build
	$(GO) run ./cmd/bench -compare $(OLD) $(NEW)

clean:
	$(GO) clean ./...
	rm -f BENCH_lanes.json BENCH_obs.json BENCH_fastpath.json BENCH_wire.json BENCH_replica.json verify-findings.log
