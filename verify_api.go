package activerbac

import (
	"fmt"
	"strings"
	"time"

	"activerbac/internal/analyze"
	"activerbac/internal/analyze/reach"
	"activerbac/internal/clock"
	"activerbac/internal/policy"
)

// VerifyConfig bounds the symbolic search; the zero value selects the
// verifier's defaults.
type VerifyConfig = reach.Config

// VerifyFinding is one verification result: a stable RV1xx
// code/severity/subject/message plus, for reachability findings, the
// replayable counterexample.
type VerifyFinding = reach.Finding

// Counterexample is a concrete event sequence driving a freshly loaded
// engine into the violating state; Steps replay via the public API.
type Counterexample = reach.Counterexample

// VerifyStep is one counterexample event.
type VerifyStep = reach.Step

// HasVerifyErrors reports whether any finding is error severity — the
// gate policyc -verify and rbacd -verify=strict fail on.
func HasVerifyErrors(fs []VerifyFinding) bool { return reach.HasErrors(fs) }

// VerifyResult is the outcome of one bounded verification run.
type VerifyResult struct {
	// Findings, errors first, then by code, then by subject. Every
	// counterexample carried here has already reproduced its violation
	// against a real engine (findings that failed replay are replaced
	// by RV199).
	Findings []VerifyFinding `json:"findings"`
	// States and Transitions size the explored system.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	// Truncated reports whether any bound cut the search short.
	Truncated bool `json:"truncated"`
}

// VerifyPolicy runs the bounded symbolic verifier over a policy before
// installation: it parses the source, runs the consistency checker
// (checker errors come back as RV000 findings), compiles the constraint
// system into a finite transition system, explores it exhaustively
// within cfg's bounds, and then replays every counterexample against a
// freshly loaded real engine on a simulated clock. A counterexample
// that fails to reproduce its violation is a verifier bug: the finding
// is replaced by an RV199 error naming the failure. The live system is
// never touched.
func VerifyPolicy(policySource string, cfg VerifyConfig) (VerifyResult, error) {
	spec, err := policy.ParseString(policySource)
	if err != nil {
		return VerifyResult{}, err
	}
	issues := policy.Check(spec)
	if policy.HasErrors(issues) {
		var fs []VerifyFinding
		for _, is := range issues {
			if is.Severity == policy.Error {
				fs = append(fs, VerifyFinding{Finding: analyze.Finding{
					Code: "RV000", Severity: analyze.Error,
					Subject: "policy:" + spec.Name, Msg: is.Msg,
				}})
			}
		}
		return VerifyResult{Findings: fs}, nil
	}
	res := reach.Verify(spec, cfg)
	out := VerifyResult{States: res.States, Transitions: res.Transitions, Truncated: res.Truncated}
	anchor := cfg.Anchor
	if anchor.IsZero() {
		anchor = time.Date(2024, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	for _, f := range res.Findings {
		if f.Counterexample != nil {
			if rerr := replayCounterexample(spec, policySource, f.Counterexample, anchor); rerr != nil {
				out.Findings = append(out.Findings, VerifyFinding{Finding: analyze.Finding{
					Code: "RV199", Severity: analyze.Error, Subject: f.Subject,
					Msg: fmt.Sprintf("verifier self-check failed: counterexample for %s did not reproduce against the engine: %v", f.Code, rerr),
				}})
				continue
			}
		}
		out.Findings = append(out.Findings, f)
	}
	reach.SortFindings(out.Findings)
	return out, nil
}

// Verify runs the bounded verifier over the live system's installed
// policy source. Findings and run stats are counted into the metrics
// registry when observability is on.
func (s *System) Verify(cfg VerifyConfig) (VerifyResult, error) {
	start := time.Now()
	res, err := VerifyPolicy(s.PolicySource(), cfg)
	if err != nil {
		return res, err
	}
	if s.obs != nil {
		s.obs.VerifyStates.Add(float64(res.States))
		for _, f := range res.Findings {
			s.obs.VerifyFindings.With(f.Code).Inc()
		}
		s.obs.VerifySeconds.Observe(time.Since(start).Seconds())
	}
	return res, nil
}

// replayCounterexample executes a counterexample's steps against a
// scratch engine loaded from the same policy on a simulated clock
// anchored where the exploration was, then asserts the claimed
// violation holds in the resulting state. Any step the engine refuses,
// and any violation the final state does not exhibit, is returned as
// the self-check error.
func replayCounterexample(spec *policy.Spec, source string, cex *Counterexample, anchor time.Time) error {
	sim := clock.NewSim(anchor)
	sys, err := openSpec(spec, source, &Options{Clock: sim})
	if err != nil {
		return fmt.Errorf("scratch engine: %w", err)
	}
	defer sys.Close()

	sessions := make(map[string]SessionID, 4)
	for i, st := range cex.Steps {
		switch st.Op {
		case "session":
			sid, err := sys.CreateSession(UserID(st.User))
			if err != nil {
				return fmt.Errorf("step %d: create session %s: %w", i, st.Session, err)
			}
			sessions[st.Session] = sid
		case "activate":
			if err := sys.AddActiveRole(UserID(st.User), sessions[st.Session], RoleID(st.Role)); err != nil {
				return fmt.Errorf("step %d: activate %s in %s: %w", i, st.Role, st.Session, err)
			}
		case "drop":
			if err := sys.DropActiveRole(UserID(st.User), sessions[st.Session], RoleID(st.Role)); err != nil {
				return fmt.Errorf("step %d: drop %s in %s: %w", i, st.Role, st.Session, err)
			}
		case "tick":
			at, err := time.Parse(time.RFC3339, st.At)
			if err != nil {
				return fmt.Errorf("step %d: bad tick instant %q: %w", i, st.At, err)
			}
			sim.AdvanceTo(at)
			sys.Quiesce()
		case "check":
			if !sys.CheckAccess(sessions[st.Session], Permission{Operation: st.Operation, Object: st.Object}) {
				return fmt.Errorf("step %d: access (%s %s) denied in %s", i, st.Operation, st.Object, st.Session)
			}
		default:
			return fmt.Errorf("step %d: unknown op %q", i, st.Op)
		}
	}
	return assertViolation(spec, sys, sessions, cex.Violation)
}

// assertViolation checks the counterexample's final-state claim
// against the real engine's state.
func assertViolation(spec *policy.Spec, sys *System, sessions map[string]SessionID, v reach.Violation) error {
	juniors := spec.Juniors()
	activeClosure := func(sid SessionID) (map[string]bool, error) {
		roles, err := sys.SessionRoles(sid)
		if err != nil {
			return nil, err
		}
		out := make(map[string]bool)
		for _, r := range roles {
			for j := range policy.JuniorClosure(juniors, string(r)) {
				out[j] = true
			}
		}
		return out, nil
	}

	switch v.Kind {
	case "dsd-cross-session":
		var set *policy.SoD
		for i := range spec.DSD {
			if spec.DSD[i].Name == v.Set {
				set = &spec.DSD[i]
			}
		}
		if set == nil {
			return fmt.Errorf("dsd set %q not in the policy", v.Set)
		}
		union := make(map[string]bool)
		for name, sid := range sessions {
			if !strings.HasPrefix(name, v.User+"#") {
				continue
			}
			cl, err := activeClosure(sid)
			if err != nil {
				return err
			}
			for r := range cl {
				union[r] = true
			}
		}
		hits := 0
		for _, r := range set.Roles {
			if union[r] {
				hits++
			}
		}
		if hits < set.N {
			return fmt.Errorf("user %s holds %d of dsd set %q across sessions, below the claimed %d", v.User, hits, v.Set, set.N)
		}
	case "cardinality-overrun":
		count := 0
		for _, sid := range sessions {
			cl, err := activeClosure(sid)
			if err != nil {
				return err
			}
			if cl[v.Role] {
				count++
			}
		}
		if count <= v.Limit {
			return fmt.Errorf("only %d sessions act with %q, within the cardinality bound %d", count, v.Role, v.Limit)
		}
	case "window-escape":
		if sys.RoleEnabled(RoleID(v.Role)) {
			return fmt.Errorf("role %q is still enabled — the window never closed", v.Role)
		}
		if len(v.Sessions) == 0 {
			return fmt.Errorf("window-escape violation names no session")
		}
		sid, ok := sessions[v.Sessions[0]]
		if !ok {
			return fmt.Errorf("session %q never created", v.Sessions[0])
		}
		roles, err := sys.SessionRoles(sid)
		if err != nil {
			return err
		}
		for _, r := range roles {
			if string(r) == v.Role {
				return nil
			}
		}
		return fmt.Errorf("role %q no longer active in %s after the window close", v.Role, v.Sessions[0])
	default:
		return fmt.Errorf("unknown violation kind %q", v.Kind)
	}
	return nil
}
