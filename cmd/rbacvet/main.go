// Command rbacvet is the repo's go vet-style invariant checker: custom
// analysis passes over the engine source encoding rules the compiler
// cannot see.
//
// Usage:
//
//	rbacvet [dir|dir/... ...]
//
// With no arguments it checks ./... from the module root. Passes:
//
//	engineclock  no time.Now/Since/Until in internal/sentinel or
//	             internal/event — all time flows through the injected
//	             engine clock (internal/clock)
//	obsnil       optional observability pointers (obs, ins, Traces) are
//	             nil-checked before every hot-path deref
//	lockorder    lane mutexes acquired in the documented order (emu
//	             before qmu)
//
// Diagnostics print one per line as "file:line:col: pass: message";
// exit status is 1 when any were found, 2 on usage or parse errors.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"activerbac/internal/vet"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	pkgs, err := load(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbacvet:", err)
		os.Exit(2)
	}
	diags := vet.Run(pkgs, vet.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// load resolves the argument patterns into parsed packages. A trailing
// "/..." recurses; a plain path names one directory. Paths are resolved
// against the module root so package-relative invariants key correctly
// no matter where rbacvet runs from.
func load(patterns []string) ([]vet.Package, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	var pkgs []vet.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, p
		}
		if pat == "" || pat == "." {
			pat = root
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		dirs := []string{pat}
		if recursive {
			dirs = nil
			err := filepath.WalkDir(pat, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != pat && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				dirs = append(dirs, path)
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		for _, dir := range dirs {
			rel, err := filepath.Rel(root, dir)
			if err != nil || seen[rel] {
				continue
			}
			seen[rel] = true
			pkg, ok, err := vet.LoadPackage(dir, filepath.ToSlash(rel))
			if err != nil {
				return nil, err
			}
			if ok {
				pkgs = append(pkgs, pkg)
			}
		}
	}
	return pkgs, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
