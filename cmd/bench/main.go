// Command bench regenerates every experiment in DESIGN.md (F1, E1-E9)
// and prints paper-style result tables. It is the human-readable
// counterpart of `go test -bench=.`: the same code paths, but with
// derived metrics (ratios, rule counts, touched-role counts) that the
// EXPERIMENTS.md write-up quotes.
//
// Usage:
//
//	bench [-exp all|F1|E1|E1P|OBS|FASTPATH|WIRE|BATCH|REPLICA|E2|E3|E4|E5|E6|E7|E8|E9] [-smoke]
//	bench -compare OLD.json NEW.json
//
// E1P additionally writes BENCH_lanes.json with the parallel-throughput
// series (checks/sec, ns/op, B/op and allocs/op per goroutine count,
// for 1 lane and NumCPU lanes). OBS writes BENCH_obs.json with the
// observability-overhead series: the same parallel workload under
// tracing off / metrics only / 1% sampled tracing / full-rate trace
// ring / full trace retention, each measured uncached (full cascade)
// and — for off and sampled — cached (fast path on); -smoke shrinks it
// for CI. FASTPATH writes BENCH_fastpath.json with the decision
// fast path off/on on the same parallel workload (repeat-heavy, so the
// on series measures the cache hit path); -smoke shrinks it to one
// short round for CI and skips the JSON file. WIRE writes
// BENCH_wire.json comparing remote-check transports against one live
// engine: HTTP/JSON vs single wire checks vs batched wire checks vs
// the embedded client decision cache (client_cached: repeat allows
// served locally under epoch-push invalidation).
// BATCH writes BENCH_batch.json comparing the batch-native decision
// path against per-tuple evaluation: in-process CheckAccessBatch vs a
// CheckAccessTuple loop (fast path off and on), and wire CHECK_BATCH
// served by a BatchBackend vs the plain-Backend per-tuple fan-out.
// REPLICA writes BENCH_replica.json with the replicated-read-fleet
// series: aggregate read throughput vs replica count, each replica a
// fixed-capacity node synced over the real wire SYNC protocol (see the
// capacity-model note on replicaBench).
// -compare diffs two benchmark JSON series benchstat-style.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"activerbac"
	clientcache "activerbac/client"
	"activerbac/internal/baseline"
	"activerbac/internal/clock"
	"activerbac/internal/conformance"
	"activerbac/internal/event"
	"activerbac/internal/policy"
	"activerbac/internal/security"
	"activerbac/internal/wire"
	"activerbac/internal/workload"
)

var epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, F1, E1, E1P, OBS, FASTPATH, WIRE, BATCH, REPLICA, E2..E9)")
	smoke := flag.Bool("smoke", false, "one short round per experiment that supports it; skip JSON output")
	compare := flag.Bool("compare", false, "compare two benchmark JSON series: bench -compare OLD.json NEW.json")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "bench: -compare needs exactly two files: OLD.json NEW.json")
			os.Exit(2)
		}
		if err := compareSeries(flag.Arg(0), flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	run := func(name string, fn func()) {
		if *exp == "all" || strings.EqualFold(*exp, name) {
			fn()
		}
	}
	run("F1", f1)
	run("E1", e1)
	run("E1P", e1p)
	run("OBS", func() { obsBench(*smoke) })
	run("FASTPATH", func() { fastpathBench(*smoke) })
	run("WIRE", func() { wireBench(*smoke) })
	run("BATCH", func() { batchBench(*smoke) })
	run("REPLICA", func() { replicaBench(*smoke) })
	run("E2", e2)
	run("E3", e3)
	run("E4", e4)
	run("E5", e5)
	run("E6", e6)
	run("E7", e7)
	run("E8", e8)
	run("E9", e9)
}

func header(id, title string) {
	fmt.Printf("\n=== %s: %s ===\n", id, title)
}

func nsPerOp(fn func(b *testing.B)) float64 {
	r := testing.Benchmark(fn)
	return float64(r.NsPerOp())
}

// round3 rounds a JSON-bound metric to 3 decimals: digits past that are
// measurement jitter, and stable digits keep BENCH_*.json diffs and
// bench-compare output readable.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func open(src string) *activerbac.System {
	sys, err := activerbac.Open(src, &activerbac.Options{Clock: clock.NewSim(epoch)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	return sys
}

// ---------------------------------------------------------------------------

// f1 reproduces Figure 1: the enterprise XYZ policy, its graph flags
// and the generated rule inventory.
func f1() {
	header("F1", "enterprise XYZ policy -> access specification graph -> rule pool (Figure 1)")
	spec := workload.XYZ()
	graph, err := policy.BuildGraph(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("graph:")
	for _, role := range graph.Roles() {
		n, _ := graph.Node(role)
		fmt.Printf("  %-6s hierarchy=%-5v ssd=%-5v ssd-inherited=%-5v cardinality=%d\n",
			role, n.Hierarchy, n.StaticSoD, n.InheritedStaticSoD, n.Cardinality)
	}
	sys := open(policy.Format(spec))
	defer sys.Close()
	counts := map[string]int{}
	for _, r := range sys.Rules() {
		kind := strings.SplitN(r.Name, ".", 2)[0]
		counts[kind]++
	}
	fmt.Printf("generated rules: %d total\n", len(sys.Rules()))
	for _, k := range []string{"AAR2", "DAR", "ENB", "TSOD1", "CC1", "CA1", "CAP1", "ADM", "CTX"} {
		fmt.Printf("  %-6s %d\n", k, counts[k])
	}
	// The paper's Section 5 claim in action: PM inherits PC's conflict.
	if err := sys.AssignUser("alice", "AM"); err != nil {
		fmt.Printf("SSD inheritance verified: alice(PM) + AM -> %v\n", err)
	}
	gen := nsPerOp(func(b *testing.B) {
		src := policy.Format(spec)
		for i := 0; i < b.N; i++ {
			s := open(src)
			s.Close()
		}
	})
	fmt.Printf("full generation time: %.0f us\n", gen/1e3)
}

// e1: CheckAccess latency vs role count, OWTE vs baseline.
func e1() {
	header("E1", "CheckAccess latency vs enterprise size (OWTE vs direct baseline)")
	fmt.Printf("%-8s %12s %12s %8s\n", "roles", "owte ns/op", "base ns/op", "ratio")
	for _, roles := range []int{8, 64, 256} {
		cfg := workload.EnterpriseConfig{
			Roles: roles, Shape: workload.XYZShape, Branch: 4,
			SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
		}
		spec := workload.MustEnterprise(cfg)
		measure := func(owte bool) float64 {
			return nsPerOp(func(b *testing.B) {
				sim := clock.NewSim(epoch)
				var enf baseline.Enforcer
				if owte {
					sys := open(policy.Format(spec))
					defer sys.Close()
					enf = sys
				} else {
					eng, err := baseline.New(sim, spec)
					if err != nil {
						b.Fatal(err)
					}
					enf = eng
				}
				drv := workload.NewDriver(enf)
				if err := drv.Run(workload.Stream(spec, workload.ActivateHeavyMix, 4*len(spec.Users), 2)); err != nil {
					b.Fatal(err)
				}
				reqs := workload.Stream(spec, workload.CheckOnlyMix, 4096, 3)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := drv.Do(reqs[i%len(reqs)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		o, base := measure(true), measure(false)
		fmt.Printf("%-8d %12.0f %12.0f %7.1fx\n", roles, o, base, o/base)
	}
}

// e1p: parallel CheckAccess throughput. The tentpole experiment for the
// scope-sharded lane refactor: the same enterprise, driven by 1..64
// client goroutines each hammering its own session, once on the classic
// single-drain detector (lanes=1) and once sharded over NumCPU scope
// lanes. Results are printed and written to BENCH_lanes.json.
func e1p() {
	header("E1P", "parallel CheckAccess throughput: enforcement lanes x client goroutines")
	cfg := workload.EnterpriseConfig{
		Roles: 64, Shape: workload.XYZShape, Branch: 4,
		SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
	}
	spec := workload.MustEnterprise(cfg)
	src := policy.Format(spec)

	type point struct {
		Lanes       int     `json:"lanes"`
		Goroutines  int     `json:"goroutines"`
		Checks      int     `json:"checks"`
		OpsPerSec   float64 `json:"ops_per_sec"`
		NsPerOp     float64 `json:"ns_per_op"`
		BPerOp      float64 `json:"b_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	}
	var series []point
	shard := runtime.NumCPU()
	if shard < 2 {
		// Single-CPU host: a NumCPU shard count would duplicate the
		// lanes=1 series; still run the sharded router so the series
		// records its routing overhead (no speedup is possible here).
		shard = 4
	}
	fmt.Printf("%-8s %-12s %14s %10s %10s %12s\n",
		"lanes", "goroutines", "checks/sec", "ns/op", "B/op", "allocs/op")
	for _, lanes := range []int{1, shard} {
		sys, err := activerbac.Open(src, &activerbac.Options{
			Clock: clock.NewSim(epoch), Lanes: lanes,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		clients := benchClients(sys, spec)
		if len(clients) == 0 {
			fmt.Fprintln(os.Stderr, "bench: E1P: no runnable clients")
			os.Exit(1)
		}
		for _, g := range []int{1, 4, 16, 64} {
			const checksPerGoroutine = 4000
			st := parallelChecks(sys, clients, g, checksPerGoroutine)
			series = append(series, point{
				Lanes: lanes, Goroutines: g, Checks: st.total, OpsPerSec: round3(st.ops),
				NsPerOp: round3(st.nsPerOp), BPerOp: round3(st.bPerOp), AllocsPerOp: round3(st.allocsPerOp),
			})
			fmt.Printf("%-8d %-12d %14.0f %10.0f %10.1f %12.2f\n",
				lanes, g, st.ops, st.nsPerOp, st.bPerOp, st.allocsPerOp)
		}
		sys.Close()
	}
	data, err := json.MarshalIndent(series, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_lanes.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: BENCH_lanes.json:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_lanes.json")
}

// benchClient is one steady-state caller: a session with the user's own
// (most junior assigned) role active and a permission that role actually
// grants — the allow path the paper's E1 measures, with a per-session
// scope key the lane router can shard.
type benchClient struct {
	sid  activerbac.SessionID
	perm activerbac.Permission
}

// benchClients builds one client per runnable user in spec.
func benchClients(sys *activerbac.System, spec *policy.Spec) []benchClient {
	var clients []benchClient
	for _, u := range spec.Users {
		if len(u.Roles) == 0 {
			continue
		}
		role := u.Roles[0]
		var perm activerbac.Permission
		for _, p := range spec.Permissions {
			if p.Role == role {
				perm = activerbac.Permission{Operation: p.Operation, Object: p.Object}
				break
			}
		}
		if perm.Operation == "" {
			continue
		}
		sid, err := sys.CreateSession(activerbac.UserID(u.Name))
		if err != nil {
			continue
		}
		if err := sys.AddActiveRole(activerbac.UserID(u.Name), sid, activerbac.RoleID(role)); err != nil {
			continue
		}
		clients = append(clients, benchClient{sid: sid, perm: perm})
	}
	return clients
}

// checkRound runs one timed round: g goroutines x perG CheckAccess
// calls each against sys.
func checkRound(sys *activerbac.System, clients []benchClient, g, perG int) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(c benchClient) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				sys.CheckAccess(c.sid, c.perm)
			}
		}(clients[i%len(clients)])
	}
	wg.Wait()
	return time.Since(start)
}

// checkRoundMem is checkRound plus the allocator's view of it: the
// process-wide malloc-count and byte deltas across the round. Lane
// drains and detector delivery run on background goroutines, so the
// process-wide delta is the honest per-check figure, at the price of a
// little GC-bookkeeping noise in the byte column.
func checkRoundMem(sys *activerbac.System, clients []benchClient, g, perG int) (time.Duration, uint64, uint64) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	d := checkRound(sys, clients, g, perG)
	runtime.ReadMemStats(&m1)
	return d, m1.Mallocs - m0.Mallocs, m1.TotalAlloc - m0.TotalAlloc
}

// roundStats summarises a best-of measurement: throughput from the
// fastest round (a descheduling blip must not masquerade as engine
// cost), allocation columns averaged over every timed round (allocs are
// deterministic per check, so averaging smooths GC noise instead).
type roundStats struct {
	total       int
	ops         float64
	nsPerOp     float64
	bPerOp      float64
	allocsPerOp float64
}

// parallelChecks runs the timed rounds for one (goroutines, perG)
// point. An untimed warmup round settles lane buffers and the
// scheduler; rounds repeat until half a second of samples accumulates
// (at least three).
func parallelChecks(sys *activerbac.System, clients []benchClient, g, perG int) roundStats {
	checkRound(sys, clients, g, perG/4) // warmup
	total := g * perG
	var best, spent time.Duration
	var mallocs, bytes, checks uint64
	for r := 0; r < 3 || spent < 500*time.Millisecond; r++ {
		d, mal, by := checkRoundMem(sys, clients, g, perG)
		spent += d
		mallocs += mal
		bytes += by
		checks += uint64(total)
		if best == 0 || d < best {
			best = d
		}
	}
	ops := float64(total) / best.Seconds()
	return roundStats{
		total:       total,
		ops:         ops,
		nsPerOp:     1e9 / ops,
		bPerOp:      float64(bytes) / float64(checks),
		allocsPerOp: float64(mallocs) / float64(checks),
	}
}

// obsBench: observability overhead on the E1P parallel series. The same
// enterprise and client setup as e1p, sharded over NumCPU lanes, driven
// under two series of observability modes. The uncached (full-cascade)
// series: off (no observer wired — the lane refactor's baseline),
// metrics (registry only, no trace ring), sampled (metrics plus a
// 256-entry trace ring with 1% sampled tracing — the always-on
// production posture), ring (same ring tracing every decision, the
// pre-sampling rbacd default), and full (a ring large enough to retain
// every decision's cascade trace). The cached series repeats off and
// sampled with the fast path on, measuring sampling's cost on the
// verdict-cache hit path — the property that makes 1% tracing safe to
// leave on: unsampled checks still hit the cache. Results are printed
// and, unless smoke is set, written to BENCH_obs.json; each point's
// overhead is computed against its named baseline in the same series
// (metrics for the tracing modes, bare off for metrics itself).
func obsBench(smoke bool) {
	header("OBS", "observability overhead: off / metrics / sampled / ring / full, uncached and cached")
	cfg := workload.EnterpriseConfig{
		Roles: 64, Shape: workload.XYZShape, Branch: 4,
		SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
	}
	spec := workload.MustEnterprise(cfg)
	src := policy.Format(spec)
	shard := runtime.NumCPU()
	if shard < 2 {
		shard = 4
	}
	checksPerGoroutine := 4000
	goroutines := []int{1, 4, 16, 64}
	rounds := 8
	if smoke {
		checksPerGoroutine = 256
		goroutines = []int{1, 4}
		rounds = 1
	}
	// "full" retains every trace of the largest run, so nothing is ever
	// evicted from the ring during the measurement.
	fullRing := goroutines[len(goroutines)-1] * checksPerGoroutine
	const sampleRate = 0.01
	// traceBudget is the recommended production posture for always-on
	// sampling: the coin flip keeps traces representative, the per-second
	// budget bounds the cascade tax when throughput is high. Without it a
	// verdict-cache hit costs ~0.5µs while a traced cascade costs ~5µs,
	// so even 1% sampling taxes the cached series ~9% — the nolimit rows
	// measure exactly that, and are why the limiter exists.
	const traceBudget = 100

	// Each mode names its overhead baseline: the tracing modes (sampled,
	// nolimit, ring, full) compare against the same series' metrics mode —
	// the "tracing off, observability on" posture rbacd actually runs — so
	// their overhead isolates the cost of *tracing*; metrics compares
	// against bare off, isolating the registry's own cost.
	modes := []struct {
		name, base string
		opts       activerbac.Options
	}{
		{"off", "off", activerbac.Options{Lanes: shard}},
		{"metrics", "off", activerbac.Options{Lanes: shard, Metrics: true}},
		{"sampled", "metrics", activerbac.Options{Lanes: shard, Metrics: true, TraceBuffer: 256, TraceSample: sampleRate, TraceRateLimit: traceBudget}},
		{"nolimit", "metrics", activerbac.Options{Lanes: shard, Metrics: true, TraceBuffer: 256, TraceSample: sampleRate}},
		{"ring", "metrics", activerbac.Options{Lanes: shard, Metrics: true, TraceBuffer: 256}},
		{"full", "metrics", activerbac.Options{Lanes: shard, Metrics: true, TraceBuffer: fullRing}},
		{"off", "off", activerbac.Options{Lanes: shard, FastPath: true}},
		{"metrics", "off", activerbac.Options{Lanes: shard, Metrics: true, FastPath: true}},
		{"sampled", "metrics", activerbac.Options{Lanes: shard, Metrics: true, TraceBuffer: 256, TraceSample: sampleRate, TraceRateLimit: traceBudget, FastPath: true}},
		{"nolimit", "metrics", activerbac.Options{Lanes: shard, Metrics: true, TraceBuffer: 256, TraceSample: sampleRate, FastPath: true}},
	}

	// All systems stay open for the whole experiment and the timed
	// rounds interleave across them, so slow drift on a loaded host (cpu
	// frequency, neighbours) hits every mode alike instead of biasing
	// whichever mode ran last.
	type candidate struct {
		name     string
		buffer   int
		sample   float64
		limit    float64
		fastpath bool
		checks   int // per goroutine per round
		baseline int // index of this candidate's off reference
		sys      *activerbac.System
		clients  []benchClient
		best     map[int]time.Duration
	}
	var cands []*candidate
	var sims []*clock.Sim
	for _, mode := range modes {
		opts := mode.opts
		sim := clock.NewSim(epoch)
		opts.Clock = sim
		sys, err := activerbac.Open(src, &opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer sys.Close()
		clients := benchClients(sys, spec)
		if len(clients) == 0 {
			fmt.Fprintln(os.Stderr, "bench: OBS: no runnable clients")
			os.Exit(1)
		}
		c := &candidate{
			name: mode.name, buffer: opts.TraceBuffer, sample: opts.TraceSample,
			limit: opts.TraceRateLimit, fastpath: opts.FastPath,
			checks: checksPerGoroutine,
			sys:    sys, clients: clients,
			best: map[int]time.Duration{},
		}
		// Milliseconds-long timed rounds let scheduler jitter and the
		// clock-driver tick masquerade as overhead, so both series scale
		// their check counts until a round spans tens of milliseconds —
		// the cached series by more, since it runs ~10x faster.
		if c.fastpath {
			c.checks *= 8
		} else {
			c.checks *= 4
		}
		cands = append(cands, c)
		sims = append(sims, sim)
		for i, prev := range cands {
			if prev.name == mode.base && prev.fastpath == c.fastpath {
				c.baseline = i
				break
			}
		}
	}
	// The sampler's per-second trace budget needs seconds that actually
	// pass: drive every candidate's simulated clock forward in wall-clock
	// lockstep for the duration of the experiment, so the limited mode
	// refills its budget at the production cadence while every mode still
	// shares identical simulated timestamps.
	clockStop := make(chan struct{})
	var clockWG sync.WaitGroup
	clockWG.Add(1)
	go func() {
		defer clockWG.Done()
		start := time.Now()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-clockStop:
				return
			case <-tick.C:
				target := epoch.Add(time.Since(start))
				for _, s := range sims {
					s.AdvanceTo(target)
				}
			}
		}
	}()
	for _, g := range goroutines {
		for _, c := range cands {
			// The warmup also seeds the verdict cache for the cached series.
			checkRound(c.sys, c.clients, g, c.checks/4+1)
		}
		for r := 0; r < rounds; r++ {
			// Rotate the starting candidate each round: a noise episode
			// lasting a few rounds then degrades different modes in
			// different rounds instead of always the same neighbours.
			for i := range cands {
				c := cands[(r+i)%len(cands)]
				d := checkRound(c.sys, c.clients, g, c.checks)
				if best, ok := c.best[g]; !ok || d < best {
					c.best[g] = d
				}
			}
		}
	}
	close(clockStop)
	clockWG.Wait()

	type point struct {
		Mode        string  `json:"mode"`
		FastPath    bool    `json:"fastpath"`
		Baseline    string  `json:"baseline"`
		TraceBuffer int     `json:"trace_buffer"`
		TraceSample float64 `json:"trace_sample,omitempty"`
		TraceLimit  float64 `json:"trace_rate_limit,omitempty"`
		Goroutines  int     `json:"goroutines"`
		Checks      int     `json:"checks"`
		OpsPerSec   float64 `json:"ops_per_sec"`
		OverheadPct float64 `json:"overhead_pct"`
	}
	var series []point
	fmt.Printf("%-8s %-9s %-9s %-8s %-8s %-8s %-12s %14s %10s\n",
		"mode", "fastpath", "baseline", "traces", "sample", "limit", "goroutines", "checks/sec", "overhead")
	for _, c := range cands {
		ratioProduct := 1.0
		for _, g := range goroutines {
			total := g * c.checks
			ops := float64(total) / c.best[g].Seconds()
			// Overhead compares best round against best round. Host noise
			// (neighbours, frequency scaling) only ever adds time, so the
			// min over several interleaved rounds converges on each mode's
			// true cost; a paired-round or mean comparison lets one noisy
			// round on either side masquerade as overhead.
			baseBest := cands[c.baseline].best[g]
			ratio := c.best[g].Seconds() / baseBest.Seconds()
			ratioProduct *= ratio
			over := (ratio - 1) * 100
			series = append(series, point{
				Mode: c.name, FastPath: c.fastpath, Baseline: cands[c.baseline].name,
				TraceBuffer: c.buffer, TraceSample: c.sample, TraceLimit: c.limit,
				Goroutines: g, Checks: total, OpsPerSec: round3(ops), OverheadPct: round3(over),
			})
			fmt.Printf("%-8s %-9v %-9s %-8d %-8.2f %-8.0f %-12d %14.0f %9.1f%%\n",
				c.name, c.fastpath, cands[c.baseline].name, c.buffer, c.sample, c.limit, g, ops, over)
		}
		// The geomean row (goroutines 0) is the series-level verdict:
		// single-g rows on a shared host still carry ±10% of residual
		// noise, and the geometric mean across the concurrency sweep is
		// what a headline "x% overhead" claim should quote.
		geo := (math.Pow(ratioProduct, 1/float64(len(goroutines))) - 1) * 100
		series = append(series, point{
			Mode: c.name, FastPath: c.fastpath, Baseline: cands[c.baseline].name,
			TraceBuffer: c.buffer, TraceSample: c.sample, TraceLimit: c.limit,
			Goroutines: 0, OverheadPct: round3(geo),
		})
		fmt.Printf("%-8s %-9v %-9s %-8d %-8.2f %-8.0f %-12s %14s %9.1f%%\n",
			c.name, c.fastpath, cands[c.baseline].name, c.buffer, c.sample, c.limit, "geomean", "", geo)
	}
	if smoke {
		fmt.Println("smoke run: BENCH_obs.json not written")
		return
	}
	data, err := json.MarshalIndent(series, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: BENCH_obs.json:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_obs.json")
}

// fastpathBench: the decision fast path (copy-on-write snapshots plus
// the epoch-tagged verdict cache) off and on, on the E1P parallel
// series. The workload is repeat-heavy — every goroutine re-checks the
// same (session, permission) pair — which is exactly the read-mostly
// regime the cache targets, so the on series measures the hit path
// while off replays the full Sentinel+ cascade every time. Both systems
// stay open for the whole experiment and the timed rounds interleave
// across them (same fairness rationale as obsBench). Results are
// printed and, unless smoke is set, written to BENCH_fastpath.json;
// smoke shrinks the run to one short round per point so `make check`
// can exercise the whole path cheaply without touching the JSON.
func fastpathBench(smoke bool) {
	header("FASTPATH", "read-mostly fast path: cached vs full-cascade CheckAccess")
	cfg := workload.EnterpriseConfig{
		Roles: 64, Shape: workload.XYZShape, Branch: 4,
		SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
	}
	spec := workload.MustEnterprise(cfg)
	src := policy.Format(spec)
	shard := runtime.NumCPU()
	if shard < 2 {
		shard = 4
	}
	checksPerGoroutine := 4000
	goroutines := []int{1, 4, 16, 64}
	sweeps, rounds := 3, 2
	if smoke {
		checksPerGoroutine = 256
		goroutines = []int{1, 4}
		sweeps, rounds = 1, 1
	}

	modes := []struct {
		name string
		opts activerbac.Options
	}{
		{"off", activerbac.Options{Lanes: shard}},
		{"on", activerbac.Options{Lanes: shard, FastPath: true}},
	}
	type candidate struct {
		name    string
		sys     *activerbac.System
		clients []benchClient
		best    map[int]time.Duration
		mallocs map[int]uint64
		bytes   map[int]uint64
		rounds  map[int]int
	}
	var cands []*candidate
	for _, mode := range modes {
		opts := mode.opts
		opts.Clock = clock.NewSim(epoch)
		sys, err := activerbac.Open(src, &opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer sys.Close()
		clients := benchClients(sys, spec)
		if len(clients) == 0 {
			fmt.Fprintln(os.Stderr, "bench: FASTPATH: no runnable clients")
			os.Exit(1)
		}
		cands = append(cands, &candidate{
			name: mode.name, sys: sys, clients: clients,
			best:    map[int]time.Duration{},
			mallocs: map[int]uint64{}, bytes: map[int]uint64{},
			rounds: map[int]int{},
		})
	}
	// Full sweeps over the goroutine ladder, best round kept per
	// (mode, g): each sweep revisits every point at a different
	// wall-clock time, so slow drift on the host (cpu frequency,
	// thermals, neighbours) can't systematically bias the low-g points
	// that would otherwise always run first — and coolest.
	for s := 0; s < sweeps; s++ {
		for _, g := range goroutines {
			for _, c := range cands {
				// The warmup also seeds the verdict cache for the on mode.
				checkRound(c.sys, c.clients, g, checksPerGoroutine/4+1)
			}
			for r := 0; r < rounds; r++ {
				for _, c := range cands {
					d, mal, by := checkRoundMem(c.sys, c.clients, g, checksPerGoroutine)
					if best, ok := c.best[g]; !ok || d < best {
						c.best[g] = d
					}
					c.mallocs[g] += mal
					c.bytes[g] += by
					c.rounds[g]++
				}
			}
		}
	}

	type point struct {
		Mode        string  `json:"mode"`
		Lanes       int     `json:"lanes"`
		Goroutines  int     `json:"goroutines"`
		Checks      int     `json:"checks"`
		OpsPerSec   float64 `json:"ops_per_sec"`
		NsPerOp     float64 `json:"ns_per_op"`
		BPerOp      float64 `json:"b_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		SpeedupPct  float64 `json:"speedup_pct"`
	}
	var series []point
	fmt.Printf("%-6s %-12s %14s %10s %10s %12s %9s\n",
		"mode", "goroutines", "checks/sec", "ns/op", "B/op", "allocs/op", "speedup")
	for _, c := range cands {
		for _, g := range goroutines {
			total := g * checksPerGoroutine
			ops := float64(total) / c.best[g].Seconds()
			base := float64(total) / cands[0].best[g].Seconds()
			speed := (ops/base - 1) * 100
			checks := float64(total) * float64(c.rounds[g])
			series = append(series, point{
				Mode: c.name, Lanes: shard, Goroutines: g, Checks: total,
				OpsPerSec: round3(ops), NsPerOp: round3(1e9 / ops),
				BPerOp:      round3(float64(c.bytes[g]) / checks),
				AllocsPerOp: round3(float64(c.mallocs[g]) / checks),
				SpeedupPct:  round3(speed),
			})
			fmt.Printf("%-6s %-12d %14.0f %10.0f %10.1f %12.2f %+8.1f%%\n",
				c.name, g, ops, 1e9/ops,
				float64(c.bytes[g])/checks, float64(c.mallocs[g])/checks, speed)
		}
	}
	for _, c := range cands {
		if st, err := c.sys.FastPathStats(); err == nil {
			fmt.Printf("fastpath[%s]: hits=%d misses=%d bypass=%d invalidations=%d epoch=%d\n",
				c.name, st.Hits, st.Misses, st.Bypass, st.Invalidations, st.Epoch)
		}
	}
	if smoke {
		fmt.Println("smoke run: BENCH_fastpath.json not written")
		return
	}
	data, err := json.MarshalIndent(series, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_fastpath.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: BENCH_fastpath.json:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_fastpath.json")
}

// wireBench: remote-check transport comparison. One live engine (fast
// path on, sharded lanes) serves the same repeat-heavy check workload
// over three transports: rbacd-style HTTP/JSON (GET /v1/check), single
// wire CHECK frames, and wire CHECK_BATCH frames of 64. Sweeps are
// interleaved across the goroutine ladder like FASTPATH so host drift
// cannot bias one transport; the best round per (transport, g) is kept.
// Results go to BENCH_wire.json with each point's speedup over HTTP at
// the same concurrency.
func wireBench(smoke bool) {
	header("WIRE", "remote check transports: HTTP/JSON vs wire single vs wire batched vs client-cached")
	cfg := workload.EnterpriseConfig{
		Roles: 64, Shape: workload.XYZShape, Branch: 4,
		SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
	}
	spec := workload.MustEnterprise(cfg)
	src := policy.Format(spec)
	shard := runtime.NumCPU()
	if shard < 2 {
		shard = 4
	}
	checksPerGoroutine := 4096
	goroutines := []int{1, 4, 16, 64}
	sweeps, rounds := 3, 2
	const batch = 64
	if smoke {
		checksPerGoroutine = 256
		goroutines = []int{1, 4}
		sweeps, rounds = 1, 1
	}

	opts := activerbac.Options{Lanes: shard, FastPath: true, Clock: clock.NewSim(epoch)}
	sys, err := activerbac.Open(src, &opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	defer sys.Close()
	clients := benchClients(sys, spec)
	if len(clients) == 0 {
		fmt.Fprintln(os.Stderr, "bench: WIRE: no runnable clients")
		os.Exit(1)
	}

	// HTTP side: the same hot path rbacd's GET /v1/check runs (string
	// tuples into CheckAccessTuple, pre-encoded verdict body).
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	allowBody, denyBody := []byte("{\"allowed\":true}\n"), []byte("{\"allowed\":false}\n")
	mux.HandleFunc("GET /v1/check", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		body := denyBody
		if sys.CheckAccessTuple(q.Get("session"), q.Get("operation"), q.Get("object")) {
			body = allowBody
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	httpSrv := &http.Server{Handler: mux}
	go httpSrv.Serve(httpLn)
	defer httpSrv.Close()
	httpClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 256, MaxIdleConnsPerHost: 256,
	}}

	// Wire side: one server, one pooled client shared by every mode.
	wireLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	wireSrv := wire.NewServer(wireSysBackend{sys}, nil)
	go wireSrv.Serve(wireLn)
	defer wireSrv.Close()
	conns := runtime.NumCPU()
	if conns > 8 {
		conns = 8
	}
	wc, err := wire.Dial(wireLn.Addr().String(), &wire.ClientOptions{
		Conns: conns, Timeout: 30 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: wire dial:", err)
		os.Exit(1)
	}
	defer wc.Close()
	// The embedded decision cache: subscribed to epoch pushes, serving
	// repeat allows locally. The workload is repeat-heavy and the policy
	// never changes mid-round, so after warmup nearly every check is a
	// local hit — the series measures the deleted round trip.
	ccache, err := clientcache.New(wireLn.Addr().String(), &clientcache.Options{
		Conns: conns, Timeout: 30 * time.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: client cache dial:", err)
		os.Exit(1)
	}
	defer ccache.Close()
	if !ccache.Subscribed() {
		fmt.Fprintln(os.Stderr, "bench: client cache did not subscribe")
		os.Exit(1)
	}

	// Per-client prebuilt request forms; verdicts are sanity-checked once
	// so a broken transport can't win by doing nothing.
	urls := make([]string, len(clients))
	tuples := make([]wire.CheckRequest, len(clients))
	base := "http://" + httpLn.Addr().String() + "/v1/check?"
	for i, c := range clients {
		urls[i] = base + url.Values{
			"session": {string(c.sid)}, "operation": {c.perm.Operation}, "object": {c.perm.Object},
		}.Encode()
		tuples[i] = wire.CheckRequest{
			Session: string(c.sid), Operation: c.perm.Operation, Object: c.perm.Object,
		}
	}
	var errs atomic.Uint64
	httpCheck := func(u string) bool {
		resp, err := httpClient.Get(u)
		if err != nil {
			errs.Add(1)
			return false
		}
		var v struct {
			Allowed bool `json:"allowed"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if derr != nil {
			errs.Add(1)
			return false
		}
		return v.Allowed
	}
	for i := range clients {
		okW, err := wc.Check(tuples[i].Session, tuples[i].Operation, tuples[i].Object)
		if err != nil || !okW || !httpCheck(urls[i]) {
			fmt.Fprintf(os.Stderr, "bench: WIRE: transport sanity check failed for client %d (wire=%v err=%v)\n", i, okW, err)
			os.Exit(1)
		}
		okC, err := ccache.Check(tuples[i].Session, tuples[i].Operation, tuples[i].Object)
		if err != nil || !okC {
			fmt.Fprintf(os.Stderr, "bench: WIRE: cached transport sanity check failed for client %d (cached=%v err=%v)\n", i, okC, err)
			os.Exit(1)
		}
	}

	// Each round: g goroutines x perG checks over the given transport.
	round := func(transport string, g, perG int) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				u, tup := urls[i%len(urls)], tuples[i%len(tuples)]
				switch transport {
				case "http":
					for j := 0; j < perG; j++ {
						httpCheck(u)
					}
				case "wire":
					for j := 0; j < perG; j++ {
						if _, err := wc.Check(tup.Session, tup.Operation, tup.Object); err != nil {
							errs.Add(1)
						}
					}
				case "client_cached":
					for j := 0; j < perG; j++ {
						if _, err := ccache.Check(tup.Session, tup.Operation, tup.Object); err != nil {
							errs.Add(1)
						}
					}
				case "wire-batch":
					reqs := make([]wire.CheckRequest, batch)
					for k := range reqs {
						reqs[k] = tup
					}
					for done := 0; done < perG; done += batch {
						n := batch
						if left := perG - done; left < n {
							n = left
						}
						if _, err := wc.CheckMany(reqs[:n]); err != nil {
							errs.Add(1)
						}
					}
				}
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}

	transports := []string{"http", "wire", "wire-batch", "client_cached"}
	best := map[string]map[int]time.Duration{}
	for _, tr := range transports {
		best[tr] = map[int]time.Duration{}
	}
	for s := 0; s < sweeps; s++ {
		for _, g := range goroutines {
			for _, tr := range transports {
				round(tr, g, checksPerGoroutine/4+1) // warmup seeds caches and conns
			}
			for r := 0; r < rounds; r++ {
				for _, tr := range transports {
					d := round(tr, g, checksPerGoroutine)
					if b, ok := best[tr][g]; !ok || d < b {
						best[tr][g] = d
					}
				}
			}
		}
	}
	if n := errs.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "bench: WIRE: %d transport errors during rounds\n", n)
		os.Exit(1)
	}

	type point struct {
		Transport  string  `json:"transport"`
		Goroutines int     `json:"goroutines"`
		Checks     int     `json:"checks"`
		Batch      int     `json:"batch"`
		OpsPerSec  float64 `json:"ops_per_sec"`
		NsPerOp    float64 `json:"ns_per_op"`
		SpeedupX   float64 `json:"speedup_vs_http"`
	}
	var series []point
	fmt.Printf("%-13s %-12s %14s %10s %12s\n",
		"transport", "goroutines", "checks/sec", "ns/op", "vs http")
	for _, tr := range transports {
		for _, g := range goroutines {
			total := g * checksPerGoroutine
			ops := float64(total) / best[tr][g].Seconds()
			httpOps := float64(total) / best["http"][g].Seconds()
			b := 0
			if tr == "wire-batch" {
				b = batch
			}
			series = append(series, point{
				Transport: tr, Goroutines: g, Checks: total, Batch: b,
				OpsPerSec: round3(ops), NsPerOp: round3(1e9 / ops), SpeedupX: round3(ops / httpOps),
			})
			fmt.Printf("%-13s %-12d %14.0f %10.0f %11.2fx\n",
				tr, g, ops, 1e9/ops, ops/httpOps)
		}
	}
	cst := ccache.Stats()
	fmt.Printf("client cache: hits=%d misses=%d invalidations=%d epoch=%d\n",
		cst.Hits, cst.Misses, cst.Invalidations, ccache.Epoch())
	if smoke {
		fmt.Println("smoke run: BENCH_wire.json not written")
		return
	}
	data, err := json.MarshalIndent(series, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_wire.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: BENCH_wire.json:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_wire.json")
}

// wireSysBackend adapts a bench-owned System to the wire Backend.
type wireSysBackend struct{ sys *activerbac.System }

func (b wireSysBackend) Check(session, operation, object string) bool {
	return b.sys.CheckAccessTuple(session, operation, object)
}

func (b wireSysBackend) PolicyEpoch() uint64 { return b.sys.SnapshotEpoch() }

// PushEpoch and CheckCacheable are the epoch-push upgrades: they let a
// client.Cache subscribe and classify verdicts for local caching.
func (b wireSysBackend) PushEpoch() uint64 { return b.sys.PushEpoch() }

func (b wireSysBackend) CheckCacheable(session, operation, object string) (allowed, cacheable bool) {
	return b.sys.CheckAccessTupleCacheable(session, operation, object)
}

// wireSysBatchBackend is wireSysBackend plus the batch-native upgrade:
// CHECK_BATCH frames run one CheckAccessBatch instead of a per-tuple
// fan-out. The bench serves the same System behind both adapters to
// isolate the batch path's contribution.
type wireSysBatchBackend struct{ wireSysBackend }

var benchConvPool = sync.Pool{New: func() any { return new([]activerbac.BatchCheck) }}

func (b wireSysBatchBackend) CheckBatch(reqs []wire.CheckRequest, vs []bool) []bool {
	cp := benchConvPool.Get().(*[]activerbac.BatchCheck)
	checks := (*cp)[:0]
	for _, r := range reqs {
		checks = append(checks, activerbac.BatchCheck{Session: r.Session, Operation: r.Operation, Object: r.Object})
	}
	vs = b.sys.CheckAccessBatch(checks, vs)
	clear(checks)
	*cp = checks[:0]
	benchConvPool.Put(cp)
	return vs
}

// batchBench: the batch-native decision path against per-tuple
// evaluation, on one repeat-heavy workload whose batches cycle four
// distinct sessions (so every batch splits into four scope groups).
//
// Two series:
//   - inproc: a CheckAccessTuple loop vs one CheckAccessBatch call per
//     batch, with the fast path off (every tuple runs the full cascade;
//     the batch path amortizes the per-tuple raise/wait machinery into
//     one lane crossing per group) and on (warm cache; the batch path
//     probes the whole batch against one epoch capture).
//   - wire: CHECK_BATCH frames against the same System behind a plain
//     Backend (the server's per-tuple fan-out — the pre-batch baseline)
//     vs a BatchBackend (batch-native), fast path off.
//
// Sweeps are interleaved and the best round per point is kept, like
// WIRE/FASTPATH. Results go to BENCH_batch.json; speedups are stored as
// *_pct columns so -compare keys row identity on the workload alone.
func batchBench(smoke bool) {
	header("BATCH", "batch-native evaluation: per-tuple loop vs CheckAccessBatch, fan-out vs batch-native CHECK_BATCH")
	cfg := workload.EnterpriseConfig{
		Roles: 64, Shape: workload.XYZShape, Branch: 4,
		SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
	}
	spec := workload.MustEnterprise(cfg)
	src := policy.Format(spec)
	shard := runtime.NumCPU()
	if shard < 2 {
		shard = 4
	}
	const groups = 4 // distinct sessions cycled through every batch
	sizes := []int{16, 256, 1024}
	totalChecks := 32768
	sweeps, rounds := 3, 2
	if smoke {
		sizes = []int{16, 64}
		totalChecks = 2048
		sweeps, rounds = 1, 1
	}

	type point struct {
		Series     string  `json:"series"` // inproc | wire
		Mode       string  `json:"mode"`   // per-tuple | batch | fanout | batch-native
		FastPath   string  `json:"fastpath"`
		Batch      int     `json:"batch"`
		Groups     int     `json:"groups"`
		Checks     int     `json:"checks"`
		OpsPerSec  float64 `json:"ops_per_sec"`
		NsPerOp    float64 `json:"ns_per_op"`
		SpeedupPct float64 `json:"speedup_vs_baseline_pct"`
	}
	var series []point
	fmt.Printf("%-7s %-13s %-9s %7s %14s %10s %12s\n",
		"series", "mode", "fastpath", "batch", "checks/sec", "ns/op", "speedup")
	emit := func(s, mode, fp string, batch int, d, base time.Duration) {
		ops := float64(totalChecks) / d.Seconds()
		series = append(series, point{
			Series: s, Mode: mode, FastPath: fp, Batch: batch, Groups: groups,
			Checks: totalChecks, OpsPerSec: round3(ops), NsPerOp: round3(1e9 / ops),
			SpeedupPct: round3((base.Seconds()/d.Seconds() - 1) * 100),
		})
		fmt.Printf("%-7s %-13s %-9s %7d %14.0f %10.0f %11.2fx\n",
			s, mode, fp, batch, ops, 1e9/ops, base.Seconds()/d.Seconds())
	}

	// buildChecks cycles the first `groups` clients so a batch of n
	// tuples lands on `groups` scope groups with n/groups tuples each.
	buildChecks := func(clients []benchClient, n int) []activerbac.BatchCheck {
		checks := make([]activerbac.BatchCheck, n)
		for i := range checks {
			c := clients[i%groups]
			checks[i] = activerbac.BatchCheck{
				Session: string(c.sid), Operation: c.perm.Operation, Object: c.perm.Object,
			}
		}
		return checks
	}

	// --- in-process series ---------------------------------------------
	for _, fp := range []bool{false, true} {
		fpName := "off"
		if fp {
			fpName = "on"
		}
		sys, err := activerbac.Open(src, &activerbac.Options{
			Lanes: shard, FastPath: fp, Clock: clock.NewSim(epoch),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		clients := benchClients(sys, spec)
		if len(clients) < groups {
			fmt.Fprintln(os.Stderr, "bench: BATCH: not enough runnable clients")
			os.Exit(1)
		}
		perTuple := func(checks []activerbac.BatchCheck) time.Duration {
			start := time.Now()
			for done := 0; done < totalChecks; done += len(checks) {
				for _, c := range checks {
					sys.CheckAccessTuple(c.Session, c.Operation, c.Object)
				}
			}
			return time.Since(start)
		}
		batched := func(checks []activerbac.BatchCheck, buf []bool) time.Duration {
			start := time.Now()
			for done := 0; done < totalChecks; done += len(checks) {
				buf = sys.CheckAccessBatch(checks, buf[:0])
			}
			return time.Since(start)
		}
		// Sanity: the batch path must agree with the per-tuple path and
		// the workload must be an allow workload (a broken path can't win
		// by denying everything from a stale snapshot).
		sanity := buildChecks(clients, sizes[0])
		for i, v := range sys.CheckAccessBatch(sanity, nil) {
			c := sanity[i]
			if !v || v != sys.CheckAccessTuple(c.Session, c.Operation, c.Object) {
				fmt.Fprintf(os.Stderr, "bench: BATCH: sanity check failed at tuple %d (fastpath %s)\n", i, fpName)
				os.Exit(1)
			}
		}
		bestSeq, bestBatch := map[int]time.Duration{}, map[int]time.Duration{}
		for s := 0; s < sweeps; s++ {
			for _, n := range sizes {
				checks := buildChecks(clients, n)
				buf := make([]bool, 0, n)
				perTuple(checks[:min(n, totalChecks/8+1)]) // warmup
				batched(checks, buf)
				for r := 0; r < rounds; r++ {
					if d := perTuple(checks); bestSeq[n] == 0 || d < bestSeq[n] {
						bestSeq[n] = d
					}
					if d := batched(checks, buf); bestBatch[n] == 0 || d < bestBatch[n] {
						bestBatch[n] = d
					}
				}
			}
		}
		for _, n := range sizes {
			emit("inproc", "per-tuple", fpName, n, bestSeq[n], bestSeq[n])
			emit("inproc", "batch", fpName, n, bestBatch[n], bestSeq[n])
		}
		sys.Close()
	}

	// --- wire series ---------------------------------------------------
	// Fast path off: the per-tuple fan-out pays the full cascade per
	// tuple, which is exactly the cost the batch-native path amortizes.
	sys, err := activerbac.Open(src, &activerbac.Options{
		Lanes: shard, FastPath: false, Clock: clock.NewSim(epoch),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	defer sys.Close()
	clients := benchClients(sys, spec)
	if len(clients) < groups {
		fmt.Fprintln(os.Stderr, "bench: BATCH: not enough runnable clients")
		os.Exit(1)
	}
	dialServer := func(backend wire.Backend) (*wire.Client, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		srv := wire.NewServer(backend, nil)
		go srv.Serve(ln)
		wc, err := wire.Dial(ln.Addr().String(), &wire.ClientOptions{
			Conns: 2, Timeout: 30 * time.Second,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: wire dial:", err)
			os.Exit(1)
		}
		return wc, func() { wc.Close(); srv.Close() }
	}
	fanoutClient, closeFanout := dialServer(wireSysBackend{sys})
	defer closeFanout()
	nativeClient, closeNative := dialServer(wireSysBatchBackend{wireSysBackend{sys}})
	defer closeNative()

	wireRound := func(wc *wire.Client, reqs []wire.CheckRequest) time.Duration {
		start := time.Now()
		for done := 0; done < totalChecks; done += len(reqs) {
			if _, err := wc.CheckMany(reqs); err != nil {
				fmt.Fprintln(os.Stderr, "bench: BATCH: wire:", err)
				os.Exit(1)
			}
		}
		return time.Since(start)
	}
	bestFanout, bestNative := map[int]time.Duration{}, map[int]time.Duration{}
	for s := 0; s < sweeps; s++ {
		for _, n := range sizes {
			checks := buildChecks(clients, n)
			reqs := make([]wire.CheckRequest, n)
			for i, c := range checks {
				reqs[i] = wire.CheckRequest{Session: c.Session, Operation: c.Operation, Object: c.Object}
			}
			wireRound(fanoutClient, reqs[:min(n, totalChecks/8+1)]) // warmup
			wireRound(nativeClient, reqs[:min(n, totalChecks/8+1)])
			for r := 0; r < rounds; r++ {
				if d := wireRound(fanoutClient, reqs); bestFanout[n] == 0 || d < bestFanout[n] {
					bestFanout[n] = d
				}
				if d := wireRound(nativeClient, reqs); bestNative[n] == 0 || d < bestNative[n] {
					bestNative[n] = d
				}
			}
		}
	}
	for _, n := range sizes {
		emit("wire", "fanout", "off", n, bestFanout[n], bestFanout[n])
		emit("wire", "batch-native", "off", n, bestNative[n], bestFanout[n])
	}

	// --- PR 5 comparison series ----------------------------------------
	// The committed BENCH_wire.json measured CHECK_BATCH against the
	// per-tuple fan-out server: fast path on, 64-tuple frames of one
	// repeated tuple per goroutine. Re-run that exact workload against
	// the batch-native backend and emit rows under the same identity
	// (transport/goroutines/batch), so
	//   make bench-compare OLD=BENCH_wire.json NEW=BENCH_batch.json
	// diffs this PR's CHECK_BATCH directly against the committed PR 5
	// per-tuple fan-out numbers.
	type wirePoint struct {
		Transport  string  `json:"transport"`
		Goroutines int     `json:"goroutines"`
		Checks     int     `json:"checks"`
		Batch      int     `json:"batch"`
		OpsPerSec  float64 `json:"ops_per_sec"`
		NsPerOp    float64 `json:"ns_per_op"`
	}
	cmpSys, err := activerbac.Open(src, &activerbac.Options{
		Lanes: shard, FastPath: true, Clock: clock.NewSim(epoch),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	defer cmpSys.Close()
	cmpClients := benchClients(cmpSys, spec)
	if len(cmpClients) == 0 {
		fmt.Fprintln(os.Stderr, "bench: BATCH: no runnable comparison clients")
		os.Exit(1)
	}
	cmpClient, closeCmp := dialServer(wireSysBatchBackend{wireSysBackend{cmpSys}})
	defer closeCmp()
	const cmpBatch = 64
	cmpGoroutines := []int{1, 4, 16, 64}
	cmpPerG := 4096
	if smoke {
		cmpGoroutines = []int{1, 4}
		cmpPerG = 256
	}
	cmpTuples := make([]wire.CheckRequest, len(cmpClients))
	for i, c := range cmpClients {
		cmpTuples[i] = wire.CheckRequest{
			Session: string(c.sid), Operation: c.perm.Operation, Object: c.perm.Object,
		}
	}
	if vs, err := cmpClient.CheckMany(cmpTuples[:1]); err != nil || len(vs) != 1 || !vs[0] {
		fmt.Fprintf(os.Stderr, "bench: BATCH: comparison sanity check failed (vs=%v err=%v)\n", vs, err)
		os.Exit(1)
	}
	cmpRound := func(g, perG int) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tup := cmpTuples[i%len(cmpTuples)]
				reqs := make([]wire.CheckRequest, cmpBatch)
				for k := range reqs {
					reqs[k] = tup
				}
				for done := 0; done < perG; done += cmpBatch {
					n := cmpBatch
					if left := perG - done; left < n {
						n = left
					}
					if _, err := cmpClient.CheckMany(reqs[:n]); err != nil {
						fmt.Fprintln(os.Stderr, "bench: BATCH: wire-batch:", err)
						os.Exit(1)
					}
				}
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}
	bestCmp := map[int]time.Duration{}
	for s := 0; s < sweeps; s++ {
		for _, g := range cmpGoroutines {
			cmpRound(g, cmpPerG/4+1) // warmup seeds caches and conns
			for r := 0; r < rounds; r++ {
				if d := cmpRound(g, cmpPerG); bestCmp[g] == 0 || d < bestCmp[g] {
					bestCmp[g] = d
				}
			}
		}
	}
	var compat []wirePoint
	fmt.Println("-- PR 5 comparison series (wire-batch identity, fast path on):",
		"diff with make bench-compare OLD=BENCH_wire.json NEW=BENCH_batch.json")
	fmt.Printf("%-11s %-12s %14s %10s\n", "transport", "goroutines", "checks/sec", "ns/op")
	for _, g := range cmpGoroutines {
		total := g * cmpPerG
		ops := float64(total) / bestCmp[g].Seconds()
		compat = append(compat, wirePoint{
			Transport: "wire-batch", Goroutines: g, Checks: total, Batch: cmpBatch,
			OpsPerSec: round3(ops), NsPerOp: round3(1e9 / ops),
		})
		fmt.Printf("%-11s %-12d %14.0f %10.0f\n", "wire-batch", g, ops, 1e9/ops)
	}

	if smoke {
		fmt.Println("smoke run: BENCH_batch.json not written")
		return
	}
	rows := make([]any, 0, len(series)+len(compat))
	for _, p := range series {
		rows = append(rows, p)
	}
	for _, p := range compat {
		rows = append(rows, p)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_batch.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: BENCH_batch.json:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_batch.json")
}

// compareSeries prints a benchstat-style delta between two benchmark
// JSON series files (any of BENCH_lanes.json / BENCH_obs.json /
// BENCH_fastpath.json, old and new need not come from the same
// experiment version). Rows are matched on every identity field (mode,
// lanes, goroutines, ...) and each measurement column present in both
// files is compared; the delta printed is new/old-1, so for ops_per_sec
// positive is faster while for the per-op columns negative is leaner.
func compareSeries(oldPath, newPath string) error {
	load := func(path string) ([]map[string]any, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rows []map[string]any
		if err := json.Unmarshal(data, &rows); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return rows, nil
	}
	oldRows, err := load(oldPath)
	if err != nil {
		return err
	}
	newRows, err := load(newPath)
	if err != nil {
		return err
	}
	compared := []string{"ops_per_sec", "ns_per_op", "b_per_op", "allocs_per_op"}
	// Measurement and derived columns never participate in row identity;
	// checks varies with round sizing and the *_pct / speedup_vs_*
	// columns are already relative to a same-file baseline (a derived
	// float in the identity would make rows unmatchable across runs).
	isMetric := func(k string) bool {
		if k == "checks" || strings.HasSuffix(k, "_pct") || strings.HasPrefix(k, "speedup_vs_") {
			return true
		}
		for _, m := range compared {
			if k == m {
				return true
			}
		}
		return false
	}
	keyOf := func(row map[string]any) string {
		keys := make([]string, 0, len(row))
		for k := range row {
			if !isMetric(k) {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, row[k]))
		}
		return strings.Join(parts, " ")
	}
	oldByKey := map[string]map[string]any{}
	for _, row := range oldRows {
		oldByKey[keyOf(row)] = row
	}
	fmt.Printf("%-40s %-14s %14s %14s %9s\n", "series point", "metric", "old", "new", "delta")
	matched := 0
	for _, row := range newRows {
		key := keyOf(row)
		old, ok := oldByKey[key]
		if !ok {
			continue
		}
		matched++
		for _, m := range compared {
			ov, okOld := old[m].(float64)
			nv, okNew := row[m].(float64)
			if !okOld || !okNew || ov == 0 {
				continue
			}
			fmt.Printf("%-40s %-14s %14.1f %14.1f %+8.1f%%\n", key, m, ov, nv, (nv/ov-1)*100)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no matching series points between %s and %s", oldPath, newPath)
	}
	return nil
}

// e2: operator detection throughput.
func e2() {
	header("E2", "composite event detection cost per operator and consumption mode")
	fmt.Printf("%-10s %10s %10s %10s %10s  (ns/op)\n", "operator", "recent", "chronicle", "continuous", "cumulative")
	ops := []struct{ name, expr string }{
		{"SEQ", "SEQ(a, b)"}, {"AND", "AND(a, b)"}, {"OR", "OR(a, b)"},
		{"NOT", "NOT(a, x, b)"}, {"APERIODIC", "APERIODIC(a, b, x)"},
	}
	for _, op := range ops {
		row := make([]float64, 0, 4)
		for _, mode := range []event.Mode{event.Recent, event.Chronicle, event.Continuous, event.Cumulative} {
			row = append(row, nsPerOp(func(b *testing.B) {
				sim := clock.NewSim(epoch)
				det := event.New(sim)
				det.MustPrimitive("a")
				det.MustPrimitive("b")
				det.MustPrimitive("x")
				det.MustDefine("c", event.WithMode(event.MustParse(op.expr), mode))
				if _, err := det.Subscribe("c", func(*event.Occurrence) {}); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sim.Advance(time.Second)
					// Balanced stream keeps buffers bounded (steady
					// state) across the accumulating modes.
					switch i % 3 {
					case 0:
						det.MustRaise("a", nil)
					case 1:
						det.MustRaise("b", nil)
					default:
						det.MustRaise("x", nil)
					}
				}
			}))
		}
		fmt.Printf("%-10s %10.0f %10.0f %10.0f %10.0f\n", op.name, row[0], row[1], row[2], row[3])
	}
}

// e3: rule generation vs enterprise size.
func e3() {
	header("E3", "rule generation time and pool size vs enterprise size")
	fmt.Printf("%-8s %-6s %10s %12s\n", "roles", "ssd", "rules", "gen time")
	for _, roles := range []int{10, 50, 100, 400} {
		for _, ssd := range []float64{0, 0.3} {
			cfg := workload.EnterpriseConfig{
				Roles: roles, Shape: workload.XYZShape, Branch: 8,
				SSDFraction: ssd, Users: roles, PermsPerRole: 2, Seed: 4,
			}
			src := policy.Format(workload.MustEnterprise(cfg))
			sys := open(src)
			rules := len(sys.Rules())
			sys.Close()
			ns := nsPerOp(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := open(src)
					s.Close()
				}
			})
			fmt.Printf("%-8d %-6.1f %10d %10.2fms\n", roles, ssd, rules, ns/1e6)
		}
	}
}

// e4: regeneration cost, incremental vs full rebuild.
func e4() {
	header("E4", "policy-change cost: incremental regeneration vs full rebuild (shift change on 1 role)")
	fmt.Printf("%-8s %12s %12s %8s %14s\n", "roles", "incr", "full", "speedup", "roles touched")
	for _, roles := range []int{10, 100, 400} {
		cfg := workload.EnterpriseConfig{
			Roles: roles, Shape: workload.XYZShape, Branch: 8,
			SSDFraction: 0.3, Users: roles, PermsPerRole: 2, Seed: 4,
		}
		base := policy.Format(workload.MustEnterprise(cfg))
		v1 := base + "shift r001 08:00:00-16:00:00\n"
		v2 := base + "shift r001 09:00:00-17:00:00\n"
		var touched int
		incr := nsPerOp(func(b *testing.B) {
			sys := open(v1)
			defer sys.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := v2
				if i%2 == 1 {
					next = v1
				}
				rep, err := sys.ApplyPolicy(next)
				if err != nil {
					b.Fatal(err)
				}
				touched = rep.Touched()
			}
		})
		full := nsPerOp(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				src := v2
				if i%2 == 1 {
					src = v1
				}
				s := open(src)
				s.Close()
			}
		})
		fmt.Printf("%-8d %10.2fms %10.2fms %7.1fx %8d of %d\n",
			roles, incr/1e6, full/1e6, full/incr, touched, roles)
	}
}

// e5: active security detection timeliness and overhead.
func e5() {
	header("E5", "active security: detection timeliness and monitor overhead")
	// Timeliness: the alert fires on exactly the k-th denial.
	sim := clock.NewSim(epoch)
	mon := security.NewMonitor(sim)
	_ = mon.AddThreshold("burst", 5, 10*time.Minute, "lock-user")
	var firedAt int
	for i := 1; i <= 10 && firedAt == 0; i++ {
		sim.Advance(time.Second)
		if len(mon.RecordDenial("mallory")) > 0 {
			firedAt = i
		}
	}
	fmt.Printf("threshold k=5 fired on denial #%d (want exactly 5)\n", firedAt)
	fmt.Printf("%-14s %12s\n", "thresholds", "ns/denial")
	for _, n := range []int{0, 1, 8, 64} {
		ns := nsPerOp(func(b *testing.B) {
			s := clock.NewSim(epoch)
			m := security.NewMonitor(s)
			for i := 0; i < n; i++ {
				_ = m.AddThreshold(fmt.Sprintf("t%d", i), 1000, time.Minute, "alert")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Advance(time.Millisecond)
				m.RecordDenial(fmt.Sprintf("u%d", i%32))
			}
		})
		fmt.Printf("%-14d %12.0f\n", n, ns)
	}
}

// e6: activation throughput per AAR variant.
func e6() {
	header("E6", "activation cost per AAR rule variant (Rules 3-4)")
	variants := []struct{ name, src, role string }{
		{"AAR1 core", "role R\nuser u: R\n", "R"},
		{"AAR2 hierarchy", "role Top\nrole R\nhierarchy Top > R\nuser u: Top\n", "R"},
		{"AAR3 dsd", "role R\nrole S\ndsd d 2: R, S\nuser u: R\n", "R"},
		{"AAR4 dsd+hier", "role Top\nrole R\nrole S\nhierarchy Top > R\ndsd d 2: R, S\nuser u: Top\n", "R"},
		{"+cardinality", "role R\nuser u: R\ncardinality R 5\n", "R"},
	}
	fmt.Printf("%-16s %14s\n", "variant", "ns/act+deact")
	for _, v := range variants {
		ns := nsPerOp(func(b *testing.B) {
			sys := open(v.src)
			defer sys.Close()
			sid, err := sys.CreateSession("u")
			if err != nil {
				b.Fatal(err)
			}
			role := activerbac.RoleID(v.role)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.AddActiveRole("u", sid, role); err != nil {
					b.Fatal(err)
				}
				if err := sys.DropActiveRole("u", sid, role); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Printf("%-16s %14.0f\n", v.name, ns)
	}
}

// e7: temporal machinery in simulated time.
func e7() {
	header("E7", "temporal constraints under simulated time (Rules 6-7)")
	// Correctness: a 2h duration bound in a simulated day.
	src := "role Nurse\nuser n: Nurse\nduration * Nurse 2h\n"
	sim := clock.NewSim(epoch)
	sys, err := activerbac.Open(src, &activerbac.Options{Clock: sim})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	sid, _ := sys.CreateSession("n")
	_ = sys.AddActiveRole("n", sid, "Nurse")
	sim.Advance(2*time.Hour + time.Second)
	roles, _ := sys.SessionRoles(sid)
	fmt.Printf("duration bound: active roles after 2h+1s = %d (want 0)\n", len(roles))
	sys.Close()

	fmt.Printf("%-16s %14s\n", "pending timers", "ns/act+deact")
	for _, pending := range []int{100, 1000, 10000} {
		ns := nsPerOp(func(b *testing.B) {
			policySrc := "role R\nduration * R 1h\n"
			for i := 0; i < pending; i++ {
				policySrc += fmt.Sprintf("user u%04d: R\n", i)
			}
			s := open(policySrc)
			defer s.Close()
			for i := 0; i < pending; i++ {
				u := activerbac.UserID(fmt.Sprintf("u%04d", i))
				sid, err := s.CreateSession(u)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.AddActiveRole(u, sid, "R"); err != nil {
					b.Fatal(err)
				}
			}
			sid, err := s.CreateSession("u0000")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.AddActiveRole("u0000", sid, "R"); err != nil {
					b.Fatal(err)
				}
				if err := s.DropActiveRole("u0000", sid, "R"); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Printf("%-16d %14.0f\n", pending, ns)
	}
}

// e8: CFD coupling overhead.
func e8() {
	header("E8", "control-flow dependency coupling (Rule 8): enable/disable round trip")
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"coupled", "role A\nrole B\ncouple A -> B\n"},
		{"uncoupled", "role A\nrole B\n"},
	} {
		ns := nsPerOp(func(b *testing.B) {
			sys := open(tc.src)
			defer sys.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.DisableRole("B"); err != nil {
					b.Fatal(err)
				}
				if err := sys.EnableRole("A"); err != nil {
					b.Fatal(err)
				}
			}
		})
		fmt.Printf("%-12s %12.0f ns/op\n", tc.name, ns)
	}
	// Correctness: both-or-neither invariant.
	sys := open("role SysAdmin\nrole SysAudit\ncouple SysAdmin -> SysAudit\n")
	defer sys.Close()
	_ = sys.DisableRole("SysAudit")
	fmt.Printf("after disabling SysAudit: SysAdmin enabled = %v (want false)\n",
		sys.RoleEnabled("SysAdmin"))
}

// e9: the conformance matrix (Section 6 comparisons as executable
// claims).
func e9() {
	header("E9", "feature conformance matrix (paper Section 6 comparisons)")
	fmt.Printf("%-58s %-9s %s\n", "feature", "status", "systems lacking it (per paper)")
	for _, f := range conformance.Matrix() {
		status := "PASS"
		if !f.Supported {
			status = "FAIL: " + f.Detail
		}
		fmt.Printf("%-58s %-9s %s\n", f.Name, status, f.MissingIn)
	}
}
