package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"activerbac"
	"activerbac/internal/clock"
	"activerbac/internal/policy"
	"activerbac/internal/replicate"
	"activerbac/internal/wire"
	"activerbac/internal/workload"
)

// replicaServiceTime is the per-check service-time floor each modelled
// replica enforces (see the capacity-model note on replicaBench). It is
// deliberately coarse: sleep-based floors carry the host's timer slack,
// and a floor well above that slack keeps per-replica capacity constant
// across fleet sizes instead of drifting with timer-wheel load.
const replicaServiceTime = time.Millisecond

// benchApplier installs synced snapshots straight through the facade —
// the bench has no analyze/verify gates to thread them through.
type benchApplier struct{ sys *activerbac.System }

func (a benchApplier) Apply(data []byte) error { return a.sys.InstallSyncSnapshot(data) }

// wireSyncBackend is wireSysBackend plus the leader's replication
// halves, so SYNC frames stream hub snapshots — the same upgrade
// rbacd's leader mode applies to its wire backend.
type wireSyncBackend struct {
	wireSysBackend
	hub *replicate.Hub
}

func (b wireSyncBackend) SyncSnapshot(replica string, applied uint64) (wire.SyncState, error) {
	return b.hub.SyncSnapshot(replica, applied)
}

func (b wireSyncBackend) ReplicaDisconnected(replica string) {
	b.hub.ReplicaDisconnected(replica)
}

// replicaCapBackend serves checks from a replica's local snapshot
// behind a fixed-capacity gate: one in-flight check at a time, each
// paying replicaServiceTime. The gate is what turns N in-process
// replicas into N modelled nodes of equal capacity (see replicaBench).
type replicaCapBackend struct {
	sys *activerbac.System
	mu  *sync.Mutex
}

func (b replicaCapBackend) Check(session, operation, object string) bool {
	b.mu.Lock()
	time.Sleep(replicaServiceTime)
	b.mu.Unlock()
	return b.sys.CheckAccessTuple(session, operation, object)
}

func (b replicaCapBackend) PolicyEpoch() uint64 { return b.sys.SnapshotEpoch() }

// benchReplicaNode is one synced read replica: its own System
// (bootstrapped empty, filled over the wire), sync loop, capacity-gated
// wire listener, and a pooled client driving it.
type benchReplicaNode struct {
	sys *activerbac.System
	rep *replicate.Replica
	srv *wire.Server
	wc  *wire.Client
}

func (n *benchReplicaNode) close() {
	n.wc.Close()
	n.rep.Close()
	n.srv.Close()
	n.sys.Close()
}

// replicaBench: aggregate read throughput of a replicated read fleet.
// One leader (enterprise policy, live sessions) streams its state over
// real TCP SYNC to four replicas; for each fleet size the same
// repeat-heavy check workload is offered to every replica in the fleet
// and the aggregate checks/sec is measured, with the scaling factor
// over the single-replica fleet. Results go to BENCH_replica.json.
//
// Capacity model — read before quoting numbers. This container has one
// CPU, so N in-process replicas cannot exhibit real parallel CPU
// speedup: every "node" shares the same core and an unthrottled run
// would measure the scheduler, not the architecture. Each replica
// therefore enforces a service-time floor (one in-flight check at a
// time, replicaServiceTime each — a fixed-capacity node, the regime
// where a real fleet is bound by per-node I/O and CPU budgets rather
// than a shared host). What the series then isolates is exactly the
// property the replication tier claims: reads are served entirely from
// replica-local snapshots — no leader round trip, no shared lock — so
// fleet read capacity is additive in replica count. The sync path
// underneath is not modelled: it is the real protocol (wire SYNC,
// content-hash verification, epoch fencing) and the run fails if any
// replica fails to converge.
func replicaBench(smoke bool) {
	header("REPLICA", "replicated read fleet: aggregate read throughput vs replica count")
	cfg := workload.EnterpriseConfig{
		Roles: 64, Shape: workload.XYZShape, Branch: 4,
		SSDFraction: 0.3, Users: 64, PermsPerRole: 3, Seed: 1,
	}
	spec := workload.MustEnterprise(cfg)
	src := policy.Format(spec)

	fleets := []int{1, 2, 4}
	goroutinesPerReplica := 4
	checksPerGoroutine := 150
	sweeps, rounds := 2, 2
	if smoke {
		fleets = []int{1, 2}
		checksPerGoroutine = 20
		sweeps, rounds = 1, 1
	}
	maxReplicas := fleets[len(fleets)-1]

	// Leader: hub + SYNC-capable wire listener. FastPath off — leader
	// read performance is not under test, and replicas compile their own
	// state from the synced snapshot anyway.
	sys, err := activerbac.Open(src, &activerbac.Options{Clock: clock.NewSim(epoch)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	defer sys.Close()
	clients := benchClients(sys, spec)
	if len(clients) == 0 {
		fmt.Fprintln(os.Stderr, "bench: REPLICA: no runnable clients")
		os.Exit(1)
	}
	hub := replicate.NewHub(sys, nil)
	leaderLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	leaderSrv := wire.NewServer(wireSyncBackend{wireSysBackend{sys}, hub}, nil)
	sys.OnEpochBump(leaderSrv.NotifyEpoch)
	go leaderSrv.Serve(leaderLn)
	defer leaderSrv.Close()

	// The fleet: all four replicas sync up front; a fleet of n uses the
	// first n (the idle ones cost the leader nothing but registry acks).
	nodes := make([]*benchReplicaNode, maxReplicas)
	for i := range nodes {
		rsys, err := activerbac.Open("", &activerbac.Options{Clock: clock.NewSim(epoch), FastPath: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		rep, err := replicate.StartReplica(replicate.ReplicaOptions{
			Name:       fmt.Sprintf("replica-%d", i),
			LeaderAddr: leaderLn.Addr().String(),
			Applier:    benchApplier{rsys},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: replica:", err)
			os.Exit(1)
		}
		rln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		rsrv := wire.NewServer(replicaCapBackend{sys: rsys, mu: new(sync.Mutex)}, nil)
		go rsrv.Serve(rln)
		wc, err := wire.Dial(rln.Addr().String(), &wire.ClientOptions{
			Conns: 2, Timeout: 30 * time.Second,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: replica dial:", err)
			os.Exit(1)
		}
		nodes[i] = &benchReplicaNode{sys: rsys, rep: rep, srv: rsrv, wc: wc}
		defer nodes[i].close()
	}

	// Convergence fence: every replica must apply the leader's current
	// epoch (sessions included) before any load is offered.
	target := sys.PushEpoch()
	deadline := time.Now().Add(60 * time.Second)
	for _, n := range nodes {
		for n.rep.AppliedEpoch() < target || !n.rep.Synced() {
			if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "bench: REPLICA: replica stuck at epoch %d, leader at %d\n",
					n.rep.AppliedEpoch(), target)
				os.Exit(1)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Verdict sanity per replica: a broken sync must not win by denying.
	tuples := make([]wire.CheckRequest, len(clients))
	for i, c := range clients {
		tuples[i] = wire.CheckRequest{
			Session: string(c.sid), Operation: c.perm.Operation, Object: c.perm.Object,
		}
	}
	for i, n := range nodes {
		tup := tuples[i%len(tuples)]
		ok, err := n.wc.Check(tup.Session, tup.Operation, tup.Object)
		if err != nil || !ok {
			fmt.Fprintf(os.Stderr, "bench: REPLICA: sanity check on replica %d = (%v, %v)\n", i, ok, err)
			os.Exit(1)
		}
	}

	// One round: every replica in the fleet serves g goroutines x perG
	// repeat-heavy checks; aggregate wall time across the whole fleet.
	round := func(fleet, g, perG int) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for r := 0; r < fleet; r++ {
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(r, i int) {
					defer wg.Done()
					tup := tuples[(r*g+i)%len(tuples)]
					for j := 0; j < perG; j++ {
						if _, err := nodes[r].wc.Check(tup.Session, tup.Operation, tup.Object); err != nil {
							fmt.Fprintln(os.Stderr, "bench: REPLICA:", err)
							os.Exit(1)
						}
					}
				}(r, i)
			}
		}
		wg.Wait()
		return time.Since(start)
	}

	best := map[int]time.Duration{}
	for s := 0; s < sweeps; s++ {
		for _, fleet := range fleets {
			round(fleet, goroutinesPerReplica, checksPerGoroutine/4+1) // warmup
			for r := 0; r < rounds; r++ {
				d := round(fleet, goroutinesPerReplica, checksPerGoroutine)
				if b, ok := best[fleet]; !ok || d < b {
					best[fleet] = d
				}
			}
		}
	}

	type point struct {
		Replicas        int     `json:"replicas"`
		Goroutines      int     `json:"goroutines"`
		Checks          int     `json:"checks"`
		ServiceMicros   float64 `json:"modelled_service_us"`
		AggOpsPerSec    float64 `json:"aggregate_ops_per_sec"`
		NsPerOp         float64 `json:"ns_per_op"`
		ScalingVs1      float64 `json:"scaling_vs_1_replica"`
		PerReplicaOps   float64 `json:"per_replica_ops_per_sec"`
		AppliedEpochMin uint64  `json:"applied_epoch_min"`
	}
	var series []point
	ops1 := float64(goroutinesPerReplica*checksPerGoroutine) / best[fleets[0]].Seconds()
	fmt.Printf("%-10s %-12s %14s %10s %14s %10s\n",
		"replicas", "goroutines", "agg checks/s", "ns/op", "per-replica/s", "vs 1")
	for _, fleet := range fleets {
		total := fleet * goroutinesPerReplica * checksPerGoroutine
		ops := float64(total) / best[fleet].Seconds()
		minApplied := nodes[0].rep.AppliedEpoch()
		for _, n := range nodes[:fleet] {
			if a := n.rep.AppliedEpoch(); a < minApplied {
				minApplied = a
			}
		}
		series = append(series, point{
			Replicas: fleet, Goroutines: fleet * goroutinesPerReplica, Checks: total,
			ServiceMicros: float64(replicaServiceTime) / 1e3,
			AggOpsPerSec:  round3(ops), NsPerOp: round3(1e9 / ops),
			ScalingVs1: round3(ops / ops1), PerReplicaOps: round3(ops / float64(fleet)),
			AppliedEpochMin: minApplied,
		})
		fmt.Printf("%-10d %-12d %14.0f %10.0f %14.0f %9.2fx\n",
			fleet, fleet*goroutinesPerReplica, ops, 1e9/ops, ops/float64(fleet), ops/ops1)
	}
	fmt.Printf("leader registry: %d replicas, epoch %d\n", len(hub.Status()), sys.PushEpoch())
	if smoke {
		fmt.Println("smoke run: BENCH_replica.json not written")
		return
	}
	data, err := json.MarshalIndent(series, "", "  ")
	if err == nil {
		err = os.WriteFile("BENCH_replica.json", append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: BENCH_replica.json:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_replica.json")
}
