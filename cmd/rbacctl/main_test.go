package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// recordingServer captures the requests rbacctl commands translate to.
type recordingServer struct {
	mu   sync.Mutex
	last struct {
		Method string
		Path   string
		Query  string
		Body   map[string]string
		Raw    string
	}
}

func (r *recordingServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.mu.Lock()
		r.last.Method = req.Method
		r.last.Path = req.URL.Path
		r.last.Query = req.URL.RawQuery
		r.last.Body = nil
		r.last.Raw = ""
		if req.Body != nil {
			data, _ := io.ReadAll(req.Body)
			r.last.Raw = string(data)
			var m map[string]string
			if json.Unmarshal(data, &m) == nil {
				r.last.Body = m
			}
		}
		r.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	})
}

func TestDispatchTranslatesCommands(t *testing.T) {
	rec := &recordingServer{}
	srv := httptest.NewServer(rec.handler())
	defer srv.Close()
	c := &client{base: srv.URL}

	policyFile := filepath.Join(t.TempDir(), "p.acp")
	if err := os.WriteFile(policyFile, []byte("role A\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		args   []string
		method string
		path   string
		body   map[string]string
		query  string
	}{
		{[]string{"session", "new", "bob"}, "POST", "/v1/sessions", map[string]string{"user": "bob"}, ""},
		{[]string{"session", "end", "s1"}, "DELETE", "/v1/sessions", map[string]string{"session": "s1"}, ""},
		{[]string{"activate", "bob", "s1", "PC"}, "POST", "/v1/activate",
			map[string]string{"user": "bob", "session": "s1", "role": "PC"}, ""},
		{[]string{"deactivate", "bob", "s1", "PC"}, "POST", "/v1/deactivate",
			map[string]string{"user": "bob", "session": "s1", "role": "PC"}, ""},
		{[]string{"check", "s1", "read", "doc"}, "GET", "/v1/check", nil,
			"object=doc&operation=read&session=s1"},
		{[]string{"check", "s1", "read", "doc", "treatment"}, "GET", "/v1/check", nil,
			"object=doc&operation=read&purpose=treatment&session=s1"},
		{[]string{"assign", "bob", "PC"}, "POST", "/v1/assign",
			map[string]string{"user": "bob", "role": "PC"}, ""},
		{[]string{"deassign", "bob", "PC"}, "POST", "/v1/deassign",
			map[string]string{"user": "bob", "role": "PC"}, ""},
		{[]string{"user", "add", "dave"}, "POST", "/v1/users", map[string]string{"user": "dave"}, ""},
		{[]string{"role", "enable", "PC"}, "POST", "/v1/roles/enable", map[string]string{"role": "PC"}, ""},
		{[]string{"role", "disable", "PC"}, "POST", "/v1/roles/disable", map[string]string{"role": "PC"}, ""},
		{[]string{"context", "set", "site", "hq"}, "POST", "/v1/context",
			map[string]string{"key": "site", "value": "hq"}, ""},
		{[]string{"context", "get", "site"}, "GET", "/v1/context", nil, "key=site"},
		{[]string{"verify"}, "GET", "/v1/verify", nil, ""},
		{[]string{"rules"}, "GET", "/v1/rules", nil, ""},
		{[]string{"stats"}, "GET", "/v1/stats", nil, ""},
		{[]string{"alerts"}, "GET", "/v1/alerts", nil, ""},
		{[]string{"policy", "get"}, "GET", "/v1/policy", nil, ""},
		{[]string{"policy", "apply", policyFile}, "POST", "/v1/policy", nil, ""},
	}
	for _, tc := range tests {
		if err := c.dispatch(tc.args); err != nil {
			t.Fatalf("dispatch(%v): %v", tc.args, err)
		}
		rec.mu.Lock()
		got := rec.last
		rec.mu.Unlock()
		if got.Method != tc.method || got.Path != tc.path {
			t.Fatalf("dispatch(%v) -> %s %s, want %s %s", tc.args, got.Method, got.Path, tc.method, tc.path)
		}
		if tc.query != "" && got.Query != tc.query {
			t.Fatalf("dispatch(%v) query = %q, want %q", tc.args, got.Query, tc.query)
		}
		for k, v := range tc.body {
			if got.Body[k] != v {
				t.Fatalf("dispatch(%v) body = %v, want %v", tc.args, got.Body, tc.body)
			}
		}
	}
	// policy apply ships the file contents verbatim.
	if err := c.dispatch([]string{"policy", "apply", policyFile}); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	raw := rec.last.Raw
	rec.mu.Unlock()
	if raw != "role A\n" {
		t.Fatalf("policy body = %q", raw)
	}
}

func TestDispatchRejectsBadCommands(t *testing.T) {
	c := &client{base: "http://127.0.0.1:0"}
	for _, args := range [][]string{
		{"bogus"},
		{"session"},
		{"session", "new"},
		{"activate", "bob"},
		{"check", "s1"},
		{"role", "explode", "PC"},
		{"policy"},
		{"policy", "apply", "/does/not/exist.acp"},
	} {
		if err := c.dispatch(args); err == nil {
			t.Errorf("dispatch(%v) accepted", args)
		}
	}
}

// jsonServer serves a fixed JSON body for any request.
func jsonServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// Exit contract: analyze and verify exit non-zero only on
// error-severity findings (or, for verify, rule-pool problems) —
// warnings alone never fail the command.
func TestAnalyzeExitCode(t *testing.T) {
	warnOnly := jsonServer(t, `{"ok":true,"findings":[
		{"code":"RA010","severity":"warn","subject":"role:PM","msg":"unreachable role"}]}`)
	if err := (&client{base: warnOnly.URL}).dispatch([]string{"analyze"}); err != nil {
		t.Fatalf("warn-only findings failed analyze: %v", err)
	}

	// ok:false alone must not fail the exit code — only the client-side
	// error-severity count decides.
	withError := jsonServer(t, `{"ok":false,"findings":[
		{"code":"RA010","severity":"warn","subject":"role:PM","msg":"unreachable role"},
		{"code":"RA001","severity":"error","subject":"ssd:purchase","msg":"conflict"}]}`)
	if err := (&client{base: withError.URL}).dispatch([]string{"analyze"}); err == nil {
		t.Fatal("error-severity finding did not fail analyze")
	}
}

func TestVerifyExitCode(t *testing.T) {
	warnOnly := jsonServer(t, `{"ok":true,"mode":"warn","states":42,"problems":[],"findings":[
		{"code":"RV104","severity":"warn","subject":"grant:PM","msg":"dead grant"}]}`)
	if err := (&client{base: warnOnly.URL}).dispatch([]string{"verify"}); err != nil {
		t.Fatalf("warn-only findings failed verify: %v", err)
	}

	withError := jsonServer(t, `{"ok":false,"mode":"warn","states":42,"problems":[],"findings":[
		{"code":"RV101","severity":"error","subject":"dsd:bank","msg":"cross-session bypass",
		 "counterexample":{"steps":[
			{"op":"session","user":"bob","session":"bob#1"},
			{"op":"activate","session":"bob#1","role":"Teller"}]}}]}`)
	if err := (&client{base: withError.URL}).dispatch([]string{"verify"}); err == nil {
		t.Fatal("error-severity finding did not fail verify")
	}

	poolProblem := jsonServer(t, `{"ok":false,"mode":"off","problems":["rule r1: dangling role"],"findings":[]}`)
	if err := (&client{base: poolProblem.URL}).dispatch([]string{"verify"}); err == nil {
		t.Fatal("rule-pool problem did not fail verify")
	}
}

func TestServerErrorSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"denied"}`, http.StatusForbidden)
	}))
	defer srv.Close()
	c := &client{base: srv.URL}
	if err := c.dispatch([]string{"stats"}); err == nil {
		t.Fatal("4xx response not surfaced as an error")
	}
}
