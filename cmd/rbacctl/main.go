// Command rbacctl is the command-line client for rbacd.
//
// Usage:
//
//	rbacctl [-server http://localhost:8180] [-wire host:port] <command> [args]
//
// With -wire set, the commands that the binary wire protocol carries —
// check, check-many, ping and epoch — go over a wire connection to
// rbacd's -wire-addr listener instead of HTTP; everything else still
// needs the HTTP API. Adding -cached routes check and check-many
// through the embedded decision cache (the client package): the
// connection subscribes to epoch pushes and repeat allows within the
// invocation are served locally, with hit/miss counters printed
// alongside the verdicts. epoch -watch subscribes and prints every
// pushed epoch as it arrives until interrupted.
//
// Commands:
//
//	session new <user>                      create a session
//	session end <session>                   end a session
//	activate <user> <session> <role>        activate a role
//	deactivate <user> <session> <role>      deactivate a role
//	check [-trace] <session> <operation> <object> [purpose]
//	check-many <session> <op:obj> [<op:obj> ...]    batched checks (wire or HTTP)
//	ping                                    wire liveness probe (wire only)
//	epoch [-watch]                          policy snapshot epoch (wire only);
//	                                        -watch streams epoch pushes until interrupted
//	assign <user> <role>                    assign a role
//	deassign <user> <role>                  remove an assignment
//	user add <user>                         register a user
//	role enable <role> | role disable <role>
//	context set <key> <value>               report an environmental change
//	context get <key>                       read an environmental value
//	verify                                  rule-pool audit + bounded-verification findings
//	rules                                   print the rule inventory
//	stats                                   print engine counters
//	fastpath                                print decision fast-path cache counters
//	alerts                                  print active-security alerts
//	replicas                                print the leader's replica registry (applied epoch, lag, connection state)
//	policy get                              print the loaded policy
//	policy apply <file.acp>                 swap the policy (regenerates rules)
//	trace [id] [-n N]                       print recent decision traces, or one by id
//	slow [-n N]                             print recent slow-decision captures
//	health                                  probe /healthz and /readyz (exit 1 when not ready)
//	metrics                                 print the Prometheus metrics page
//	analyze                                 run the static analyzer on the live system
//
// check -trace mints a 16-byte trace id client-side, carries it on the
// request (the X-Activerbac-Trace header over HTTP, the TRACE opcode
// flag over -wire), and then fetches the retained cascade trace back
// from /v1/traces/{id} — an end-to-end round trip of one decision's
// telemetry.
//
// analyze and verify print one finding per line in the stable
// greppable form "CODE severity subject: message" (verify additionally
// prints each finding's replayable counterexample trace, indented) and
// exit non-zero only when a finding is error severity — warnings never
// fail the command, so scripts can gate on exit codes against
// -analyze=warn / -verify=warn servers. verify also fails on rule-pool
// problems, which are errors by nature.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"activerbac"
	clientcache "activerbac/client"
	"activerbac/internal/wire"
)

func main() {
	args := os.Args[1:]
	server := "http://localhost:8180"
	serverSet := false
	wireAddr := ""
	cached := false
	for len(args) >= 1 {
		if args[0] == "-cached" {
			cached = true
			args = args[1:]
			continue
		}
		if len(args) >= 2 && args[0] == "-server" {
			server = args[1]
			serverSet = true
			args = args[2:]
			continue
		}
		if len(args) >= 2 && args[0] == "-wire" {
			wireAddr = args[1]
			args = args[2:]
			continue
		}
		break
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimSuffix(server, "/"), serverSet: serverSet, wireAddr: wireAddr, cached: cached}
	if err := c.dispatch(args); err != nil {
		fmt.Fprintln(os.Stderr, "rbacctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rbacctl [-server URL] [-wire host:port] [-cached] <command> [args]
commands: session new|end, activate, deactivate, check [-trace], assign, deassign,
          user add, role enable|disable, context set|get, verify,
          rules, stats, fastpath, alerts, replicas, policy get|apply,
          trace [id] [-n N], slow [-n N], health, metrics, analyze
wire:     check [-trace], check-many <session> <op:obj>..., ping, epoch [-watch]
          -cached serves check/check-many through the embedded decision cache`)
}

type client struct {
	base      string
	serverSet bool   // -server was given explicitly (not the default)
	wireAddr  string // non-empty routes check/check-many/ping/epoch over wire
	cached    bool   // -cached: check/check-many go through client.Cache
}

func (c *client) dispatch(args []string) error {
	cmd := args[0]
	rest := args[1:]
	switch cmd {
	case "session":
		if len(rest) == 2 && rest[0] == "new" {
			return c.post("/v1/sessions", map[string]string{"user": rest[1]})
		}
		if len(rest) == 2 && rest[0] == "end" {
			return c.do("DELETE", "/v1/sessions", map[string]string{"session": rest[1]})
		}
	case "activate":
		if len(rest) == 3 {
			return c.post("/v1/activate", map[string]string{"user": rest[0], "session": rest[1], "role": rest[2]})
		}
	case "deactivate":
		if len(rest) == 3 {
			return c.post("/v1/deactivate", map[string]string{"user": rest[0], "session": rest[1], "role": rest[2]})
		}
	case "check":
		traced := false
		if len(rest) > 0 && rest[0] == "-trace" {
			traced = true
			rest = rest[1:]
		}
		if traced {
			if len(rest) != 3 {
				return fmt.Errorf("check -trace wants exactly <session> <operation> <object>")
			}
			return c.checkTraced(rest[0], rest[1], rest[2])
		}
		if len(rest) == 3 && c.wireAddr != "" {
			if c.cached {
				return c.cachedCheck(rest[0], [][2]string{{rest[1], rest[2]}})
			}
			return c.wireCheck(rest[0], rest[1], rest[2])
		}
		if len(rest) == 3 || len(rest) == 4 {
			if c.wireAddr != "" {
				return fmt.Errorf("purpose checks are not carried on the wire protocol; drop -wire")
			}
			q := url.Values{"session": {rest[0]}, "operation": {rest[1]}, "object": {rest[2]}}
			if len(rest) == 4 {
				q.Set("purpose", rest[3])
			}
			return c.get("/v1/check?" + q.Encode())
		}
	case "check-many":
		if len(rest) >= 2 {
			if c.wireAddr != "" {
				if c.cached {
					pairs := make([][2]string, 0, len(rest)-1)
					for _, p := range rest[1:] {
						op, obj, ok := strings.Cut(p, ":")
						if !ok {
							return fmt.Errorf("check-many wants op:obj pairs, got %q", p)
						}
						pairs = append(pairs, [2]string{op, obj})
					}
					return c.cachedCheck(rest[0], pairs)
				}
				return c.wireCheckMany(rest[0], rest[1:])
			}
			return c.httpCheckMany(rest[0], rest[1:])
		}
	case "ping":
		if len(rest) == 0 {
			return c.wirePing()
		}
	case "epoch":
		if len(rest) == 0 {
			return c.wireEpoch()
		}
		if len(rest) == 1 && rest[0] == "-watch" {
			return c.wireEpochWatch()
		}
	case "assign":
		if len(rest) == 2 {
			return c.post("/v1/assign", map[string]string{"user": rest[0], "role": rest[1]})
		}
	case "deassign":
		if len(rest) == 2 {
			return c.post("/v1/deassign", map[string]string{"user": rest[0], "role": rest[1]})
		}
	case "user":
		if len(rest) == 2 && rest[0] == "add" {
			return c.post("/v1/users", map[string]string{"user": rest[1]})
		}
	case "role":
		if len(rest) == 2 && (rest[0] == "enable" || rest[0] == "disable") {
			return c.post("/v1/roles/"+rest[0], map[string]string{"role": rest[1]})
		}
	case "context":
		if len(rest) == 3 && rest[0] == "set" {
			return c.post("/v1/context", map[string]string{"key": rest[1], "value": rest[2]})
		}
		if len(rest) == 2 && rest[0] == "get" {
			return c.get("/v1/context?" + url.Values{"key": {rest[1]}}.Encode())
		}
	case "verify":
		if len(rest) == 0 {
			return c.verify()
		}
	case "rules":
		return c.get("/v1/rules")
	case "stats":
		return c.get("/v1/stats")
	case "fastpath":
		if len(rest) == 0 {
			return c.get("/v1/fastpath")
		}
	case "alerts":
		return c.get("/v1/alerts")
	case "replicas":
		if len(rest) == 0 {
			return c.get("/v1/replication")
		}
	case "policy":
		if len(rest) == 1 && rest[0] == "get" {
			return c.getRaw("/v1/policy")
		}
		if len(rest) == 2 && rest[0] == "apply" {
			data, err := os.ReadFile(rest[1])
			if err != nil {
				return err
			}
			return c.postRaw("/v1/policy", data)
		}
	case "trace":
		switch {
		case len(rest) == 0:
			return c.get("/v1/traces")
		case len(rest) == 2 && rest[0] == "-n":
			return c.get("/v1/traces?" + url.Values{"n": {rest[1]}}.Encode())
		case len(rest) == 1:
			return c.get("/v1/traces/" + url.PathEscape(rest[0]))
		}
	case "slow":
		switch {
		case len(rest) == 0:
			return c.get("/v1/slow")
		case len(rest) == 2 && rest[0] == "-n":
			return c.get("/v1/slow?" + url.Values{"n": {rest[1]}}.Encode())
		}
	case "health":
		if len(rest) == 0 {
			return c.health()
		}
	case "metrics":
		if len(rest) == 0 {
			return c.getRaw("/metrics")
		}
	case "analyze":
		if len(rest) == 0 {
			return c.analyze()
		}
	}
	usage()
	return fmt.Errorf("unknown or malformed command %q", strings.Join(args, " "))
}

// wireClient dials the -wire address (one short-lived pooled client per
// invocation; rbacctl is a one-shot tool).
func (c *client) wireClient() (*wire.Client, error) {
	if c.wireAddr == "" {
		return nil, fmt.Errorf("this command needs -wire host:port (rbacd's -wire-addr listener)")
	}
	return wire.Dial(c.wireAddr, &wire.ClientOptions{Timeout: 10 * time.Second})
}

func (c *client) wireCheck(session, operation, object string) error {
	wc, err := c.wireClient()
	if err != nil {
		return err
	}
	defer wc.Close()
	allowed, err := wc.Check(session, operation, object)
	if err != nil {
		return err
	}
	fmt.Printf("{\n  \"allowed\": %v\n}\n", allowed)
	return nil
}

// wireCheckMany batches "op:obj" pairs for one session into a single
// CHECK_BATCH frame and prints one verdict line per pair.
func (c *client) wireCheckMany(session string, pairs []string) error {
	reqs := make([]wire.CheckRequest, 0, len(pairs))
	for _, p := range pairs {
		op, obj, ok := strings.Cut(p, ":")
		if !ok {
			return fmt.Errorf("check-many wants op:obj pairs, got %q", p)
		}
		reqs = append(reqs, wire.CheckRequest{Session: session, Operation: op, Object: obj})
	}
	wc, err := c.wireClient()
	if err != nil {
		return err
	}
	defer wc.Close()
	verdicts, err := wc.CheckMany(reqs)
	if err != nil {
		return err
	}
	for i, v := range verdicts {
		fmt.Printf("%s %s: %v\n", reqs[i].Operation, reqs[i].Object, v)
	}
	return nil
}

// httpCheckMany is check-many over POST /v1/check-batch, printing the
// same verdict lines as the wire transport.
func (c *client) httpCheckMany(session string, pairs []string) error {
	type batchCheck struct {
		Session   string `json:"session"`
		Operation string `json:"operation"`
		Object    string `json:"object"`
	}
	checks := make([]batchCheck, 0, len(pairs))
	for _, p := range pairs {
		op, obj, ok := strings.Cut(p, ":")
		if !ok {
			return fmt.Errorf("check-many wants op:obj pairs, got %q", p)
		}
		checks = append(checks, batchCheck{Session: session, Operation: op, Object: obj})
	}
	data, err := json.Marshal(map[string]any{"checks": checks})
	if err != nil {
		return err
	}
	req, err := http.NewRequest("POST", c.base+"/v1/check-batch", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var payload struct {
		Verdicts []bool `json:"verdicts"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&payload); err != nil {
		return fmt.Errorf("decoding /v1/check-batch response: %w", err)
	}
	if len(payload.Verdicts) != len(checks) {
		return fmt.Errorf("server answered %d of %d checks", len(payload.Verdicts), len(checks))
	}
	for i, v := range payload.Verdicts {
		fmt.Printf("%s %s: %v\n", checks[i].Operation, checks[i].Object, v)
	}
	return nil
}

// checkTraced mints a trace id, runs the check with it over whichever
// transport is selected, then fetches the retained cascade trace back
// over HTTP and prints verdict, id and trace.
func (c *client) checkTraced(session, operation, object string) error {
	tid := activerbac.NewTraceID()
	if tid.IsZero() {
		return fmt.Errorf("could not mint a trace id")
	}
	var allowed bool
	if c.wireAddr != "" {
		wc, err := c.wireClient()
		if err != nil {
			return err
		}
		defer wc.Close()
		allowed, err = wc.CheckTraced(session, operation, object, tid)
		if err != nil {
			return err
		}
	} else {
		req, err := http.NewRequest("GET", c.base+"/v1/check?"+url.Values{
			"session": {session}, "operation": {operation}, "object": {object},
		}.Encode(), nil)
		if err != nil {
			return err
		}
		req.Header.Set("X-Activerbac-Trace", tid.String())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		var payload struct {
			Allowed bool `json:"allowed"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			return fmt.Errorf("decoding /v1/check response: %w", err)
		}
		allowed = payload.Allowed
	}
	fmt.Printf("allowed: %v\ntrace id: %s\n", allowed, tid)
	// The trace body is served over HTTP only. A wire check with no
	// explicit -server would guess the default HTTP address and likely
	// print a confusing dial error; leave the fetch to the caller.
	if c.wireAddr != "" && !c.serverSet {
		fmt.Printf("(wire carries no trace bodies: rerun with -server, or GET /v1/traces/%s)\n", tid)
		return nil
	}
	return c.get("/v1/traces/" + tid.String())
}

// health probes liveness and readiness; an unready server (or one that
// cannot be reached) makes the command exit non-zero.
func (c *client) health() error {
	resp, err := http.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz returned %s", resp.Status)
	}
	fmt.Println("live: true")
	if err := c.get("/readyz"); err != nil {
		return fmt.Errorf("not ready: %w", err)
	}
	return nil
}

func (c *client) wirePing() error {
	wc, err := c.wireClient()
	if err != nil {
		return err
	}
	defer wc.Close()
	start := time.Now()
	if err := wc.Ping(); err != nil {
		return err
	}
	fmt.Printf("pong (%s)\n", time.Since(start).Round(time.Microsecond))
	return nil
}

func (c *client) wireEpoch() error {
	wc, err := c.wireClient()
	if err != nil {
		return err
	}
	defer wc.Close()
	epoch, err := wc.PolicyVersion()
	if err != nil {
		return err
	}
	fmt.Printf("{\n  \"snapshotEpoch\": %d\n}\n", epoch)
	return nil
}

// wireEpochWatch subscribes to epoch pushes and prints each epoch as
// it arrives, until interrupted or the subscription drops.
func (c *client) wireEpochWatch() error {
	if c.wireAddr == "" {
		return fmt.Errorf("epoch -watch needs -wire host:port (rbacd's -wire-addr listener)")
	}
	// The callbacks run on the connection's read goroutine and must not
	// block: pushes are forwarded through a buffered channel and the
	// channel send never waits (a full buffer coalesces — the watcher
	// prints the epochs it got, never stalls the reader).
	pushes := make(chan uint64, 64)
	lost := make(chan struct{}, 1)
	wc, err := wire.Dial(c.wireAddr, &wire.ClientOptions{
		Timeout: 10 * time.Second,
		OnEpochPush: func(epoch uint64) {
			select {
			case pushes <- epoch:
			default:
			}
		},
		OnSubscriptionLost: func() {
			select {
			case lost <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		return err
	}
	defer wc.Close()
	epoch, err := wc.Subscribe()
	if err != nil {
		return err
	}
	fmt.Printf("epoch %d (watching for pushes; interrupt to stop)\n", epoch)
	for {
		select {
		case e := <-pushes:
			fmt.Printf("epoch %d\n", e)
		case <-lost:
			return fmt.Errorf("subscription lost (connection dropped)")
		}
	}
}

// cachedCheck runs the pairs for one session through the embedded
// decision cache: repeat allows within the invocation are served
// locally, and the hit/miss/subscription counters are printed after
// the verdicts.
func (c *client) cachedCheck(session string, pairs [][2]string) error {
	cc, err := clientcache.New(c.wireAddr, &clientcache.Options{Timeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer cc.Close()
	for _, p := range pairs {
		allowed, err := cc.Check(session, p[0], p[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s %s: %v\n", p[0], p[1], allowed)
	}
	st := cc.Stats()
	fmt.Printf("cache: subscribed=%v epoch=%d hits=%d misses=%d\n",
		cc.Subscribed(), cc.Epoch(), st.Hits, st.Misses)
	return nil
}

// clientFinding is the finding shape both /v1/analyze and /v1/verify
// serve; verify findings may carry a counterexample.
type clientFinding struct {
	Code           string `json:"code"`
	Severity       string `json:"severity"`
	Subject        string `json:"subject"`
	Msg            string `json:"msg"`
	Counterexample *struct {
		Steps []clientStep `json:"steps"`
	} `json:"counterexample"`
}

// clientStep is one counterexample event as served by /v1/verify.
type clientStep struct {
	Op        string `json:"op"`
	User      string `json:"user"`
	Session   string `json:"session"`
	Role      string `json:"role"`
	Operation string `json:"operation"`
	Object    string `json:"object"`
	At        string `json:"at"`
}

func (st clientStep) String() string {
	switch st.Op {
	case "session":
		return fmt.Sprintf("session %s for %s", st.Session, st.User)
	case "activate", "drop":
		return fmt.Sprintf("%s %s in %s", st.Op, st.Role, st.Session)
	case "tick":
		return fmt.Sprintf("tick -> %s", st.At)
	case "check":
		return fmt.Sprintf("check %s %s in %s (allowed)", st.Operation, st.Object, st.Session)
	}
	return st.Op
}

// countErrors tallies error-severity findings — the only severity that
// makes analyze/verify exit non-zero.
func countErrors(fs []clientFinding) int {
	n := 0
	for _, f := range fs {
		if f.Severity == "error" {
			n++
		}
	}
	return n
}

// analyze fetches /v1/analyze and prints each finding in the stable
// one-line form; only error-severity findings make the command exit 1
// (warnings are reported but never fail scripting).
func (c *client) analyze() error {
	resp, err := http.Get(c.base + "/v1/analyze")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var payload struct {
		Findings []clientFinding `json:"findings"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&payload); err != nil {
		return fmt.Errorf("decoding /v1/analyze response: %w", err)
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	for _, f := range payload.Findings {
		fmt.Printf("%s %s %s: %s\n", f.Code, f.Severity, f.Subject, f.Msg)
	}
	if nErr := countErrors(payload.Findings); nErr > 0 {
		return fmt.Errorf("static analysis reported %d error-severity finding(s)", nErr)
	}
	fmt.Printf("analysis: %d finding(s), none at error severity\n", len(payload.Findings))
	return nil
}

// verify fetches /v1/verify and prints the rule-pool problems plus the
// bounded-verification findings with their counterexample traces.
// Error-severity findings and pool problems make the command exit 1;
// warnings do not.
func (c *client) verify() error {
	resp, err := http.Get(c.base + "/v1/verify")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var payload struct {
		Problems  []string        `json:"problems"`
		Mode      string          `json:"mode"`
		States    int             `json:"states"`
		Truncated bool            `json:"truncated"`
		Findings  []clientFinding `json:"findings"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&payload); err != nil {
		return fmt.Errorf("decoding /v1/verify response: %w", err)
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	for _, p := range payload.Problems {
		fmt.Println("rule-pool problem:", p)
	}
	for _, f := range payload.Findings {
		fmt.Printf("%s %s %s: %s\n", f.Code, f.Severity, f.Subject, f.Msg)
		if f.Counterexample != nil {
			for _, st := range f.Counterexample.Steps {
				fmt.Printf("    %s\n", st)
			}
		}
	}
	nErr := countErrors(payload.Findings)
	if len(payload.Problems) > 0 || nErr > 0 {
		return fmt.Errorf("verification reported %d rule-pool problem(s) and %d error-severity finding(s)", len(payload.Problems), nErr)
	}
	if payload.Mode == "off" {
		fmt.Println("verification: rule pool consistent (bounded verification off; start rbacd with -verify=warn)")
		return nil
	}
	trunc := ""
	if payload.Truncated {
		trunc = ", search truncated"
	}
	fmt.Printf("verification: %d state(s) explored, %d finding(s), none at error severity%s\n",
		payload.States, len(payload.Findings), trunc)
	return nil
}

func (c *client) post(path string, body map[string]string) error {
	return c.do("POST", path, body)
}

func (c *client) do(method, path string, body map[string]string) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.send(req)
}

func (c *client) get(path string) error {
	req, err := http.NewRequest("GET", c.base+path, nil)
	if err != nil {
		return err
	}
	return c.send(req)
}

func (c *client) getRaw(path string) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func (c *client) postRaw(path string, data []byte) error {
	req, err := http.NewRequest("POST", c.base+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain")
	return c.send(req)
}

func (c *client) send(req *http.Request) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	// Pretty-print JSON responses.
	var buf bytes.Buffer
	if json.Indent(&buf, body, "", "  ") == nil {
		fmt.Println(buf.String())
	} else {
		fmt.Println(string(body))
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return nil
}
