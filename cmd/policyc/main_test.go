package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writePolicy(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.acp")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodPolicy = `
policy "test"
role PM
role PC
hierarchy PM > PC
user bob: PC
cardinality PM 1
`

func TestRunAllModes(t *testing.T) {
	path := writePolicy(t, goodPolicy)
	// All-mode (default) must succeed: check + graph + rules.
	if err := run(path, false, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, false, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, true, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, false, false, true, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, false, false, false, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, false, false, false, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyAcceptsCleanPolicy(t *testing.T) {
	path := writePolicy(t, `
policy "clean"
role Manager
role Clerk
hierarchy Manager > Clerk
permission Clerk: write po.dat
user meg: Manager
user carl: Clerk
`)
	if err := run(path, false, false, true, false, false, false); err != nil {
		t.Fatalf("verifier rejected a clean policy: %v", err)
	}
}

func TestRunVerifyRejectsDSoDBypass(t *testing.T) {
	// One user authorized for both members of a dynamic SoD set can
	// split them across two sessions — unreachable for the per-session
	// engine check, found by the bounded explorer (RV101).
	path := writePolicy(t, `
policy "bypass"
role Teller
role Auditor
dsd bank 2: Teller, Auditor
permission Teller: write ledger.dat
user bob: Teller, Auditor
`)
	if err := run(path, false, false, true, false, false, false); err == nil {
		t.Fatal("verifier accepted a cross-session DSoD bypass")
	}
}

func TestRunAnalyzeRejectsConflict(t *testing.T) {
	// CEO is a common ancestor of both SSoD members — invisible to the
	// statement-level checker, caught by the analyzer (RV001).
	path := writePolicy(t, `
policy "conflict"
role CEO
role PC
role AC
hierarchy CEO > PC
hierarchy CEO > AC
ssd purchase 2: PC, AC
`)
	if err := run(path, false, true, false, false, false, false); err == nil {
		t.Fatal("analyzer accepted an SSoD/hierarchy conflict")
	}
}

func TestRunRejectsInconsistentPolicy(t *testing.T) {
	path := writePolicy(t, "role A\nrole A\n")
	if err := run(path, true, false, false, false, false, false); err == nil {
		t.Fatal("inconsistent policy accepted")
	}
}

func TestRunRejectsBadSyntax(t *testing.T) {
	path := writePolicy(t, "bogus statement\n")
	if err := run(path, false, false, false, false, false, false); err == nil {
		t.Fatal("bad syntax accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "none.acp"), false, false, false, false, false, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
