// Command policyc is the policy compiler: it parses an .acp policy,
// runs the consistency checker, instantiates the access specification
// graph and prints the OWTE rule inventory the policy generates — the
// paper's Figure 1 pipeline as a command.
//
// Usage:
//
//	policyc [-check] [-analyze] [-verify] [-graph] [-rules] [-format] policy.acp
//
// With no mode flags, policyc runs all of check, graph and rules.
// -analyze additionally runs the static analyzer (internal/analyze)
// over the compiled policy and its generated rule set, printing each
// finding as one greppable "CODE severity subject: message" line; any
// error-severity finding fails the compile with a non-zero exit.
// -verify additionally runs the bounded symbolic verifier
// (internal/analyze/reach): it explores every reachable session state
// within bounds, prints RV1xx findings with their replayable
// counterexample traces, and fails the compile on error-severity
// findings the same way -analyze does.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"activerbac"
	"activerbac/internal/clock"
	"activerbac/internal/policy"
)

func main() {
	checkOnly := flag.Bool("check", false, "only run the consistency checker")
	analyzeFlag := flag.Bool("analyze", false, "run the static analyzer; error-severity findings fail the compile")
	verifyFlag := flag.Bool("verify", false, "run the bounded symbolic verifier; error-severity findings fail the compile")
	showGraph := flag.Bool("graph", false, "print the access specification graph")
	showRules := flag.Bool("rules", false, "print the generated rule inventory")
	format := flag.Bool("format", false, "print the canonical form of the policy")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: policyc [-check] [-analyze] [-verify] [-graph] [-rules] [-format] policy.acp\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *checkOnly, *analyzeFlag, *verifyFlag, *showGraph, *showRules, *format); err != nil {
		fmt.Fprintln(os.Stderr, "policyc:", err)
		os.Exit(1)
	}
}

func run(path string, checkOnly, analyzeFlag, verifyFlag, showGraph, showRules, format bool) error {
	spec, err := policy.ParseFile(path)
	if err != nil {
		return err
	}
	all := !checkOnly && !analyzeFlag && !verifyFlag && !showGraph && !showRules && !format

	issues := policy.Check(spec)
	for _, is := range issues {
		fmt.Println(is)
	}
	if policy.HasErrors(issues) {
		return fmt.Errorf("policy %q has errors", spec.Name)
	}
	fmt.Printf("policy %q: consistent (%d roles, %d users)\n", spec.Name, len(spec.Roles), len(spec.Users))
	if checkOnly {
		return nil
	}

	if analyzeFlag {
		findings, err := activerbac.AnalyzePolicy(policy.Format(spec), time.Time{})
		if err != nil {
			return err
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		nErr := 0
		for _, f := range findings {
			if f.Severity == activerbac.AnalysisError {
				nErr++
			}
		}
		if nErr > 0 {
			return fmt.Errorf("policy %q has %d error-severity analysis finding(s)", spec.Name, nErr)
		}
		fmt.Printf("analysis: %d finding(s), none at error severity\n", len(findings))
		if !verifyFlag && !showGraph && !showRules && !format {
			return nil
		}
	}

	if verifyFlag {
		res, err := activerbac.VerifyPolicy(policy.Format(spec), activerbac.VerifyConfig{})
		if err != nil {
			return err
		}
		nErr := 0
		for _, f := range res.Findings {
			fmt.Println(f.String())
			if f.Counterexample != nil {
				printCounterexample(f.Counterexample)
			}
			if f.Severity == activerbac.AnalysisError {
				nErr++
			}
		}
		if nErr > 0 {
			return fmt.Errorf("policy %q has %d error-severity verification finding(s)", spec.Name, nErr)
		}
		fmt.Printf("verification: %d state(s) explored, %d finding(s), none at error severity\n", res.States, len(res.Findings))
		if !showGraph && !showRules && !format {
			return nil
		}
	}

	if format {
		fmt.Print(policy.Format(spec))
		return nil
	}

	if showGraph || all {
		graph, err := policy.BuildGraph(spec)
		if err != nil {
			return err
		}
		fmt.Println("\naccess specification graph:")
		for _, role := range graph.Roles() {
			n, _ := graph.Node(role)
			var flags []string
			if n.Hierarchy {
				flags = append(flags, "hierarchy")
			}
			if n.StaticSoD {
				flags = append(flags, "ssd")
			}
			if n.InheritedStaticSoD {
				flags = append(flags, "ssd(inherited)")
			}
			if n.DynamicSoD {
				flags = append(flags, "dsd")
			}
			if n.InheritedDynamicSoD {
				flags = append(flags, "dsd(inherited)")
			}
			if n.Cardinality > 0 {
				flags = append(flags, fmt.Sprintf("cardinality=%d", n.Cardinality))
			}
			if n.Temporal {
				flags = append(flags, "temporal")
			}
			if n.CFD {
				flags = append(flags, "cfd")
			}
			parents := make([]string, 0, len(n.Parents))
			for _, p := range n.Parents {
				parents = append(parents, p.Role)
			}
			line := "  " + role
			if len(parents) > 0 {
				line += " -> parents(" + strings.Join(parents, ", ") + ")"
			}
			if len(flags) > 0 {
				line += " [" + strings.Join(flags, ", ") + "]"
			}
			fmt.Println(line)
		}
	}

	if showRules || all {
		sys, err := activerbac.Open(policy.Format(spec), &activerbac.Options{
			Clock: clock.NewSim(time.Now()),
		})
		if err != nil {
			return err
		}
		defer sys.Close()
		if errs := sys.VerifyRules(); len(errs) != 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, e)
			}
			return fmt.Errorf("generated rule pool failed verification")
		}
		rules := sys.Rules()
		fmt.Printf("\ngenerated rules (%d, verified):\n", len(rules))
		for _, r := range rules {
			fmt.Printf("  %-22s ON %-32s %s/%s tags=%v\n",
				r.Name, r.On, r.Class, r.Granularity, r.Tags)
			for _, c := range r.Conditions {
				fmt.Printf("      WHEN %s\n", c)
			}
			for _, a := range r.Then {
				fmt.Printf("      THEN %s\n", a)
			}
			for _, a := range r.Else {
				fmt.Printf("      ELSE %s\n", a)
			}
		}
	}
	return nil
}

// printCounterexample renders a finding's replayable trace, one
// indented line per step.
func printCounterexample(cex *activerbac.Counterexample) {
	for _, st := range cex.Steps {
		fmt.Printf("    %s\n", formatStep(st))
	}
}

// formatStep renders one counterexample step in the compact trace
// syntax used across policyc, rbacctl and the docs.
func formatStep(st activerbac.VerifyStep) string {
	switch st.Op {
	case "session":
		return fmt.Sprintf("session %s for %s", st.Session, st.User)
	case "activate", "drop":
		return fmt.Sprintf("%s %s in %s", st.Op, st.Role, st.Session)
	case "tick":
		return fmt.Sprintf("tick -> %s", st.At)
	case "check":
		return fmt.Sprintf("check %s %s in %s (allowed)", st.Operation, st.Object, st.Session)
	}
	return st.Op
}
