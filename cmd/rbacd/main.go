// Command rbacd serves an active authorization engine over HTTP. It
// loads an .acp policy, generates the OWTE rule pool and answers
// enforcement requests; the policy can be swapped at runtime through
// the API, regenerating exactly the affected rules.
//
// Usage:
//
//	rbacd -policy policy.acp [-addr :8180] [-audit audit.log] [-audit-sync 3s]
//	      [-snapshot state.json] [-lanes N] [-trace-buffer 256] [-debug-addr :6060]
//	      [-analyze off|warn|strict] [-verify off|warn|strict] [-wire-addr :8181]
//	      [-mode leader|replica] [-leader-addr host:8181] [-replica-name NAME]
//
// -mode selects the replication role. A leader (the default) owns the
// policy and serves SYNC snapshots to replicas on its wire listener; a
// replica boots empty, pulls policy + compiled state from -leader-addr
// (identifying itself as -replica-name in the leader's registry), and
// serves checks from its local snapshot — every mutating endpoint
// answers 403 and belongs at the leader. A replica's /readyz stays 503
// until the first sync lands; on leader loss it keeps serving the
// last-applied epoch (stale, never down) and reconnects with backoff.
// Synced policies pass through the same -analyze/-verify gates a hot
// reload does. In replica mode POLICY_VERSION answers with the applied
// leader epoch, and GET /v1/replication on the leader reports each
// replica's applied epoch, lag, last sync time and connection state.
//
// -analyze gates both startup and policy hot reloads on the static
// analyzer (internal/analyze): "warn" (the default) logs every finding,
// "strict" refuses to start — and rejects POST /v1/policy — when any
// finding is error severity, "off" skips analysis entirely.
//
// -verify gates startup and hot reloads on the bounded symbolic
// verifier (internal/analyze/reach), which explores every reachable
// session state within bounds and emits RV1xx findings with replayable
// counterexamples. "off" (the default — verification explores a state
// space and is heavier than analysis), "warn" logs findings and serves
// them at GET /v1/verify, "strict" refuses to start — and rejects
// POST /v1/policy with 422 — on any error-severity finding.
//
// -wire-addr additionally serves the internal/wire binary decision
// protocol (CHECK / CHECK_BATCH / PING / POLICY_VERSION / SUBSCRIBE)
// on a second listener; -wire-max-inflight, -wire-read-timeout,
// -wire-write-timeout and -wire-max-frame tune its per-connection
// backpressure, and -wire-max-subscribers caps epoch-push
// subscriptions (0 = unlimited). Subscribed connections receive an
// unsolicited EPOCH_PUSH frame on every policy-epoch bump, which the
// client package uses to invalidate its embedded decision cache. The
// HTTP listener's own slow-client guards are -http-read-header-timeout
// and -http-idle-timeout.
//
// Endpoints (all JSON unless noted):
//
//	POST   /v1/sessions              {"user":U}                -> {"session":S}
//	DELETE /v1/sessions              {"session":S}
//	POST   /v1/activate              {"user":U,"session":S,"role":R}
//	POST   /v1/deactivate            {"user":U,"session":S,"role":R}
//	GET    /v1/check?session=&operation=&object=[&purpose=]    -> {"allowed":bool}
//	POST   /v1/check-batch           {"checks":[{"session":S,"operation":OP,"object":O},...]}
//	                                                           -> {"verdicts":[bool,...]} (input order)
//	POST   /v1/assign                {"user":U,"role":R}
//	POST   /v1/deassign              {"user":U,"role":R}
//	POST   /v1/users                 {"user":U}
//	POST   /v1/roles/enable          {"role":R}
//	POST   /v1/roles/disable         {"role":R}
//	POST   /v1/context               {"key":K,"value":V}       context update (may revoke roles)
//	GET    /v1/context?key=K                                   -> current value
//	GET    /v1/verify                                          -> rule-pool check + bounded-verification findings/counterexamples
//	GET    /v1/rules                                           -> rule inventory
//	GET    /v1/stats                                           -> engine counters
//	GET    /v1/fastpath                                        -> decision fast-path cache counters
//	GET    /v1/alerts                                          -> active-security alerts
//	POST   /v1/policy                (text/plain .acp body)    -> regeneration report
//	GET    /v1/policy                                          -> current policy source
//	GET    /v1/traces[?n=N]                                    -> recent decision traces
//	GET    /v1/traces/{id}                                     -> one decision trace (ring id or 32-hex trace id)
//	GET    /v1/slow[?n=N]                                      -> recent slow-decision captures
//	GET    /v1/analyze                                         -> static-analysis findings
//	GET    /v1/replication           (leader only)             -> per-replica applied epoch, lag, connection state
//	GET    /metrics                  (Prometheus text format)  -> metric registry
//	GET    /healthz                  (text)                    -> liveness (always 200 once serving)
//	GET    /readyz                                             -> readiness (503 until serving cleanly)
//
// Decision telemetry: -trace-sample keeps always-on sampled tracing at
// ~rate (with -trace-rate-limit capping traces/second), and a client
// can force a fully traced decision by sending an X-Activerbac-Trace
// header (32 hex chars) on GET /v1/check or POST /v1/check-batch — the
// trace is then retrievable at /v1/traces/{id} under that id. The wire
// protocol carries the same id via the TRACE opcode flag. -slow-threshold
// captures decisions slower than the threshold into the /v1/slow ring.
//
// With -debug-addr set, net/http/pprof is served on that (separate,
// opt-in) listener.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"activerbac"
	"activerbac/internal/replicate"
	"activerbac/internal/wire"
)

// config collects the command-line settings.
type config struct {
	addr, policyPath, auditPath, snapshotPath string
	lanes                                     int
	auditSync                                 time.Duration
	traceBuffer                               int
	traceSample                               float64
	traceRateLimit                            float64
	slowThreshold                             time.Duration
	slowBuffer                                int
	debugAddr                                 string
	analyzeMode                               string
	verifyMode                                string
	fastpath                                  string

	httpReadHeaderTimeout time.Duration
	httpIdleTimeout       time.Duration

	wireAddr           string
	wireMaxInflight    int
	wireMaxFrame       int
	wireReadTimeout    time.Duration
	wireWriteTimeout   time.Duration
	wireMaxSubscribers int

	mode        string
	leaderAddr  string
	replicaName string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8180", "listen address")
	flag.StringVar(&cfg.policyPath, "policy", "", "path to the .acp policy (required)")
	flag.StringVar(&cfg.auditPath, "audit", "", "append-only audit log path (optional)")
	flag.DurationVar(&cfg.auditSync, "audit-sync", 3*time.Second,
		"audit flush interval bounding crash loss; 0 = flush+fsync every append")
	flag.StringVar(&cfg.snapshotPath, "snapshot", "", "state snapshot path, written on shutdown (optional)")
	flag.IntVar(&cfg.lanes, "lanes", 0, "enforcement lanes: 0 = one per CPU, 1 = fully serialized")
	flag.IntVar(&cfg.traceBuffer, "trace-buffer", 256, "decision traces retained for /v1/traces; 0 disables tracing")
	flag.Float64Var(&cfg.traceSample, "trace-sample", 0,
		"sampled tracing: trace this fraction of decisions (0 = trace every decision, the pre-sampling behaviour); client-requested traces are always honoured")
	flag.Float64Var(&cfg.traceRateLimit, "trace-rate-limit", 0,
		"cap sampled traces per second (0 = no cap); only meaningful with -trace-sample")
	flag.DurationVar(&cfg.slowThreshold, "slow-threshold", 0,
		"capture decisions slower than this into the /v1/slow ring (0 disables)")
	flag.IntVar(&cfg.slowBuffer, "slow-buffer", 64, "slow-decision captures retained for /v1/slow")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on this address (off when empty)")
	flag.StringVar(&cfg.analyzeMode, "analyze", "warn",
		"static-analysis gate for startup and hot reloads: off, warn or strict")
	flag.StringVar(&cfg.verifyMode, "verify", "off",
		"bounded-verification gate for startup and hot reloads: off, warn or strict")
	flag.StringVar(&cfg.fastpath, "fastpath", "off",
		"decision fast path (off or on): serve repeat ALLOW access checks from an epoch-tagged cache; stats at /v1/fastpath")
	flag.DurationVar(&cfg.httpReadHeaderTimeout, "http-read-header-timeout", 10*time.Second,
		"how long an HTTP client may take to send its request headers (slowloris guard); 0 disables")
	flag.DurationVar(&cfg.httpIdleTimeout, "http-idle-timeout", 2*time.Minute,
		"how long an idle HTTP keep-alive connection is kept open; 0 disables")
	flag.StringVar(&cfg.wireAddr, "wire-addr", "",
		"also serve the binary wire protocol on this address (off when empty)")
	flag.IntVar(&cfg.wireMaxInflight, "wire-max-inflight", 0,
		"wire: max requests admitted but unanswered per connection; 0 = protocol default")
	flag.IntVar(&cfg.wireMaxFrame, "wire-max-frame", 0,
		"wire: max frame size in bytes, larger frames drop the connection; 0 = protocol default")
	flag.DurationVar(&cfg.wireReadTimeout, "wire-read-timeout", 0,
		"wire: per-frame read deadline doubling as idle timeout; 0 = protocol default, negative disables")
	flag.DurationVar(&cfg.wireWriteTimeout, "wire-write-timeout", 0,
		"wire: per-flush write deadline; 0 = protocol default, negative disables")
	flag.IntVar(&cfg.wireMaxSubscribers, "wire-max-subscribers", 0,
		"wire: max connections subscribed to epoch pushes; 0 = unlimited")
	flag.StringVar(&cfg.mode, "mode", "leader",
		"replication role: leader (owns the policy, serves SYNC) or replica (syncs from -leader-addr, read-only)")
	flag.StringVar(&cfg.leaderAddr, "leader-addr", "",
		"replica mode: the leader's wire listener address (required)")
	flag.StringVar(&cfg.replicaName, "replica-name", "",
		"replica mode: name reported to the leader's registry (default: hostname)")
	flag.Parse()
	switch cfg.mode {
	case "leader":
		if cfg.policyPath == "" {
			flag.Usage()
			os.Exit(2)
		}
	case "replica":
		if cfg.policyPath != "" {
			fmt.Fprintln(os.Stderr, "rbacd: replica mode syncs its policy from the leader; -policy is not allowed")
			os.Exit(2)
		}
		if cfg.leaderAddr == "" {
			fmt.Fprintln(os.Stderr, "rbacd: replica mode needs -leader-addr")
			os.Exit(2)
		}
		if cfg.replicaName == "" {
			host, err := os.Hostname()
			if err != nil || host == "" {
				fmt.Fprintln(os.Stderr, "rbacd: cannot derive -replica-name from hostname; set it explicitly")
				os.Exit(2)
			}
			cfg.replicaName = host
		}
	default:
		fmt.Fprintf(os.Stderr, "rbacd: -mode must be leader or replica (got %q)\n", cfg.mode)
		os.Exit(2)
	}
	switch cfg.analyzeMode {
	case "off", "warn", "strict":
	default:
		fmt.Fprintf(os.Stderr, "rbacd: -analyze must be off, warn or strict (got %q)\n", cfg.analyzeMode)
		os.Exit(2)
	}
	switch cfg.verifyMode {
	case "off", "warn", "strict":
	default:
		fmt.Fprintf(os.Stderr, "rbacd: -verify must be off, warn or strict (got %q)\n", cfg.verifyMode)
		os.Exit(2)
	}
	switch cfg.fastpath {
	case "off", "on":
	default:
		fmt.Fprintf(os.Stderr, "rbacd: -fastpath must be off or on (got %q)\n", cfg.fastpath)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		log.Fatal("rbacd: ", err)
	}
}

func run(cfg config) error {
	if cfg.lanes == 0 {
		cfg.lanes = activerbac.LanesAuto
	}
	opts := &activerbac.Options{
		AuditPath:            cfg.auditPath,
		Lanes:                cfg.lanes,
		Metrics:              true,
		TraceBuffer:          cfg.traceBuffer,
		TraceSample:          cfg.traceSample,
		TraceRateLimit:       cfg.traceRateLimit,
		SlowThreshold:        cfg.slowThreshold,
		SlowBuffer:           cfg.slowBuffer,
		AuditSyncEveryAppend: cfg.auditSync == 0,
		FastPath:             cfg.fastpath == "on",
	}
	if opts.FastPath {
		// Precedence, not error: per-decision tracing needs the cascade
		// steps a cached verdict does not have, and an audit trail needs
		// every firing, so either feature forces decisions back onto the
		// full cascade.
		if cfg.traceBuffer > 0 && cfg.traceSample <= 0 {
			log.Print("rbacd: -fastpath=on with full decision tracing enabled; traced decisions bypass the cache (set -trace-sample to keep cache hits, or -trace-buffer=0 to disable tracing)")
		}
		if cfg.auditPath != "" {
			log.Print("rbacd: -fastpath=on with an audit log; audited decisions bypass the cache for trail completeness")
		}
	}
	// A replica boots empty — its policy and state arrive over the wire
	// from the leader; until then it is simply not ready.
	var sys *activerbac.System
	var err error
	if cfg.mode == "replica" {
		sys, err = activerbac.Open("", opts)
	} else {
		sys, err = activerbac.OpenFile(cfg.policyPath, opts)
	}
	if err != nil {
		return err
	}
	// Close quiesces the lanes once more and releases the audit log; it
	// runs after the shutdown sequence below has drained everything.
	defer sys.Close()

	// Startup analysis gate: the rule pool just generated is vetted
	// before the listener opens; strict mode refuses to serve a policy
	// with error-severity conflicts. Warn mode serves anyway but reports
	// the degradation through /readyz. A replica has nothing to vet yet:
	// its gates run inside the sync applier, once per policy change.
	analyzeErrors := false
	if cfg.analyzeMode != "off" && cfg.mode != "replica" {
		findings := sys.Analyze()
		for _, f := range findings {
			log.Print("rbacd: analyze: ", f)
		}
		analyzeErrors = activerbac.HasAnalysisErrors(findings)
		if cfg.analyzeMode == "strict" && analyzeErrors {
			return fmt.Errorf("policy %s has error-severity analysis findings (run with -analyze=warn to serve anyway)", cfg.policyPath)
		}
	}

	// Startup verification gate: the bounded symbolic verifier explores
	// the policy's reachable session states and replays every
	// counterexample before the listener opens. Strict mode refuses to
	// serve a policy with a reachable violation; warn mode serves the
	// findings (and their counterexamples) at GET /v1/verify.
	verifyErrors := false
	var verifyRes activerbac.VerifyResult
	if cfg.verifyMode != "off" && cfg.mode != "replica" {
		res, err := sys.Verify(activerbac.VerifyConfig{})
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		verifyRes = res
		for _, f := range res.Findings {
			log.Print("rbacd: verify: ", f.String())
		}
		verifyErrors = activerbac.HasVerifyErrors(res.Findings)
		if cfg.verifyMode == "strict" && verifyErrors {
			return fmt.Errorf("policy %s has error-severity verification findings (run with -verify=warn to serve anyway)", cfg.policyPath)
		}
	}

	// Buffered audit mode: a background timer bounds how much trail a
	// crash can lose to one flush interval.
	if cfg.auditPath != "" && cfg.auditSync > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go auditFlusher(sys, cfg.auditSync, stop)
	}

	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		log.Printf("rbacd: pprof on %s", dln.Addr())
		go func() {
			if err := http.Serve(dln, debugMux()); !errors.Is(err, net.ErrClosed) {
				log.Print("rbacd: debug server: ", err)
			}
		}()
		defer dln.Close()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)

	srv := &server{sys: sys, analyzeMode: cfg.analyzeMode, verifyMode: cfg.verifyMode,
		verifyRes: verifyRes, wireConfigured: cfg.wireAddr != "", replica: cfg.mode == "replica"}
	srv.analyzeErrors.Store(analyzeErrors)
	srv.verifyErrors.Store(verifyErrors)

	// Leader side of replication: the hub serves SYNC snapshots (one
	// serialization per epoch however many replicas resync) and keeps
	// the registry GET /v1/replication reports.
	if cfg.mode == "leader" {
		srv.hub = replicate.NewHub(sys, hubInstruments(sys))
	}

	// Replica side: the sync loop pulls snapshots from the leader and
	// installs them through the same analyze/verify gates a hot reload
	// passes. It starts before the listeners open — /readyz holds the
	// traffic back until the first sync lands.
	if cfg.mode == "replica" {
		rep, err := replicate.StartReplica(replicate.ReplicaOptions{
			Name:        cfg.replicaName,
			LeaderAddr:  cfg.leaderAddr,
			Applier:     replicaApplier{srv},
			Instruments: replicaInstruments(sys),
			Logf:        log.Printf,
		})
		if err != nil {
			return err
		}
		defer rep.Close()
		srv.rep = rep
	}
	httpSrv := &http.Server{
		Handler: srv.routes(),
		// Slow-client guards: a client trickling headers or parking an
		// idle keep-alive connection must not pin a conn goroutine
		// forever. Per-request handler time stays unbounded (policy
		// uploads can be large); these only bound the non-serving states.
		ReadHeaderTimeout: cfg.httpReadHeaderTimeout,
		IdleTimeout:       cfg.httpIdleTimeout,
	}

	var wireSrv *wire.Server
	if cfg.wireAddr != "" {
		wln, err := net.Listen("tcp", cfg.wireAddr)
		if err != nil {
			return fmt.Errorf("wire listener: %w", err)
		}
		// A leader's backend additionally implements wire.SyncBackend and
		// wire.ReplicaTracker, so SYNC frames reach the hub; a replica's
		// does not, and answers SYNC with ERROR(unsupported).
		var backend wire.Backend = wireBackend{srv}
		if srv.hub != nil {
			backend = leaderWireBackend{wireBackend{srv}, srv.hub}
		}
		wireSrv = wire.NewServer(backend, &wire.ServerOptions{
			MaxFrame:       cfg.wireMaxFrame,
			MaxInFlight:    cfg.wireMaxInflight,
			ReadTimeout:    cfg.wireReadTimeout,
			WriteTimeout:   cfg.wireWriteTimeout,
			MaxSubscribers: cfg.wireMaxSubscribers,
			Instruments:    wireInstruments(sys),
		})
		// Every push-epoch bump — hot reload, role flip, window change,
		// session churn — fans out to subscribed wire connections so
		// embedded client caches invalidate without polling. The hook
		// runs under engine locks; NotifyEpoch is non-blocking.
		sys.OnEpochBump(wireSrv.NotifyEpoch)
		log.Printf("rbacd: wire protocol on %s", wln.Addr())
		srv.wireReady.Store(true)
		go func() {
			if err := wireSrv.Serve(wln); !errors.Is(err, wire.ErrServerClosed) {
				log.Print("rbacd: wire server: ", err)
			}
			srv.wireReady.Store(false)
		}()
	}

	if cfg.mode == "replica" {
		log.Printf("rbacd: replica %q serving on %s (leader %s, %d lanes)",
			cfg.replicaName, ln.Addr(), cfg.leaderAddr, sys.Lanes())
	} else {
		log.Printf("rbacd: serving on %s (policy %s, %d rules, %d lanes)",
			ln.Addr(), cfg.policyPath, len(sys.Rules()), sys.Lanes())
	}
	return serve(sys, httpSrv, wireSrv, ln, done, cfg.snapshotPath)
}

// wireBackend adapts the server (not the System directly, so wire
// checks honor the same policy-swap serialization as HTTP handlers) to
// the wire protocol's Backend interface.
type wireBackend struct{ srv *server }

func (b wireBackend) Check(session, operation, object string) bool {
	return b.srv.system().CheckAccessTuple(session, operation, object)
}

// PolicyEpoch answers POLICY_VERSION. A replica advertises the leader
// push epoch it has applied — the number a fleet operator compares
// across sites — instead of its local snapshot epoch, whose numbering
// is meaningless outside this process.
func (b wireBackend) PolicyEpoch() uint64 {
	if rep := b.srv.rep; rep != nil {
		return rep.AppliedEpoch()
	}
	return b.srv.system().SnapshotEpoch()
}

// PushEpoch upgrades the backend to wire.PushBackend: SUBSCRIBE answers
// with the engine's push epoch, which also bumps on session-grade
// changes the policy snapshot epoch does not see.
func (b wireBackend) PushEpoch() uint64 { return b.srv.system().PushEpoch() }

// CheckCacheable upgrades the backend to wire.CacheBackend: a
// CACHE-flagged CHECK additionally reports whether the verdict is safe
// for an epoch-tagged client cache.
func (b wireBackend) CheckCacheable(session, operation, object string) (allowed, cacheable bool) {
	return b.srv.system().CheckAccessTupleCacheable(session, operation, object)
}

// CheckTraced upgrades the backend to wire.TraceBackend: a TRACE-flagged
// CHECK runs the fully traced cascade and retains the trace under the
// client-minted id, resolvable at /v1/traces/{id}.
func (b wireBackend) CheckTraced(session, operation, object string, tid [wire.TraceIDSize]byte) bool {
	return b.srv.system().CheckAccessTupleTraced(session, operation, object, activerbac.TraceID(tid))
}

// CheckBatch upgrades the backend to wire.BatchBackend: a CHECK_BATCH
// frame becomes one batch-native engine pass instead of a per-tuple
// fan-out. The conversion slice is pooled; the strings inside were
// already allocated by the frame decode.
func (b wireBackend) CheckBatch(reqs []wire.CheckRequest, vs []bool) []bool {
	cb := checkConvPool.Get().(*[]activerbac.BatchCheck)
	checks := (*cb)[:0]
	for _, r := range reqs {
		checks = append(checks, activerbac.BatchCheck{
			Session: r.Session, Operation: r.Operation, Object: r.Object,
		})
	}
	vs = b.srv.system().CheckAccessBatch(checks, vs)
	for i := range checks {
		checks[i] = activerbac.BatchCheck{}
	}
	*cb = checks[:0]
	checkConvPool.Put(cb)
	return vs
}

// CheckBatchTraced upgrades the backend to wire.BatchTraceBackend: the
// batch's first tuple runs the traced cascade under the client id, the
// remainder stays batch-native.
func (b wireBackend) CheckBatchTraced(reqs []wire.CheckRequest, vs []bool, tid [wire.TraceIDSize]byte) []bool {
	cb := checkConvPool.Get().(*[]activerbac.BatchCheck)
	checks := (*cb)[:0]
	for _, r := range reqs {
		checks = append(checks, activerbac.BatchCheck{
			Session: r.Session, Operation: r.Operation, Object: r.Object,
		})
	}
	vs = b.srv.system().CheckAccessBatchTraced(checks, vs, activerbac.TraceID(tid))
	for i := range checks {
		checks[i] = activerbac.BatchCheck{}
	}
	*cb = checks[:0]
	checkConvPool.Put(cb)
	return vs
}

var checkConvPool = sync.Pool{New: func() any {
	b := make([]activerbac.BatchCheck, 0, 256)
	return &b
}}

// leaderWireBackend upgrades the wire backend with the replication
// leader's halves: wire.SyncBackend (SYNC frames stream hub snapshots)
// and wire.ReplicaTracker (connection teardown marks the registry row
// disconnected).
type leaderWireBackend struct {
	wireBackend
	hub *replicate.Hub
}

func (b leaderWireBackend) SyncSnapshot(replica string, applied uint64) (wire.SyncState, error) {
	return b.hub.SyncSnapshot(replica, applied)
}

func (b leaderWireBackend) ReplicaDisconnected(replica string) {
	b.hub.ReplicaDisconnected(replica)
}

// replicaApplier installs synced snapshots on a replica. A snapshot
// whose policy differs from the live source first passes the same
// analyze/verify gates a hot reload does (on scratch engines); most
// syncs carry session-grade churn under an unchanged policy and skip
// straight to the install. The server mutex serializes installs
// against request handling exactly like POST /v1/policy.
type replicaApplier struct{ srv *server }

func (a replicaApplier) Apply(data []byte) error {
	s := a.srv
	src, err := activerbac.SyncSnapshotPolicy(data)
	if err != nil {
		return err
	}
	policyChanged := src != s.system().PolicySource()
	analyzeErrors := s.analyzeErrors.Load()
	verifyErrors := s.verifyErrors.Load()
	var verifyRes activerbac.VerifyResult
	ranVerify := false
	if policyChanged && s.analyzeMode != "off" {
		findings, err := activerbac.AnalyzePolicy(src, time.Now())
		if err != nil {
			return err
		}
		for _, f := range findings {
			log.Print("rbacd: analyze: ", f)
		}
		analyzeErrors = activerbac.HasAnalysisErrors(findings)
		if s.analyzeMode == "strict" && analyzeErrors {
			return errors.New("synced policy rejected by static analysis")
		}
	}
	if policyChanged && s.verifyMode != "off" {
		res, err := activerbac.VerifyPolicy(src, activerbac.VerifyConfig{})
		if err != nil {
			return err
		}
		for _, f := range res.Findings {
			log.Print("rbacd: verify: ", f.String())
		}
		verifyRes, ranVerify = res, true
		verifyErrors = activerbac.HasVerifyErrors(res.Findings)
		if s.verifyMode == "strict" && verifyErrors {
			return errors.New("synced policy rejected by bounded verification")
		}
	}
	s.mu.Lock()
	err = s.sys.InstallSyncSnapshot(data)
	if err == nil && ranVerify {
		s.verifyRes = verifyRes
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	s.analyzeErrors.Store(analyzeErrors)
	s.verifyErrors.Store(verifyErrors)
	return nil
}

// hubInstruments binds the leader hub's hooks to the activerbac_sync_*
// families.
func hubInstruments(sys *activerbac.System) *replicate.HubInstruments {
	o := sys.Observer()
	if o == nil {
		return nil
	}
	return &replicate.HubInstruments{
		Sync:        func() { o.SyncTotal.Inc() },
		SyncBytes:   func(n float64) { o.SyncBytes.Add(n) },
		SyncSeconds: func(s float64) { o.SyncSeconds.Observe(s) },
	}
}

// replicaInstruments binds the replica loop's hooks to the
// activerbac_sync_* families plus the activerbac_replica_lag gauge.
func replicaInstruments(sys *activerbac.System) *replicate.ReplicaInstruments {
	o := sys.Observer()
	if o == nil {
		return nil
	}
	return &replicate.ReplicaInstruments{
		Sync:        func() { o.SyncTotal.Inc() },
		SyncBytes:   func(n float64) { o.SyncBytes.Add(n) },
		SyncSeconds: func(s float64) { o.SyncSeconds.Observe(s) },
		Lag:         func(lag float64) { o.ReplicaLag.Set(lag) },
	}
}

// wireInstruments binds the wire server's transport hooks to the
// activerbac_wire_* metric families. rbacd always opens the System with
// Metrics on, but guard anyway: a nil Observer just disables the hooks.
func wireInstruments(sys *activerbac.System) *wire.Instruments {
	o := sys.Observer()
	if o == nil {
		return nil
	}
	return &wire.Instruments{
		Request:     func(opcode string) { o.WireRequests.With(opcode).Inc() },
		Error:       func(opcode string) { o.WireErrors.With(opcode).Inc() },
		Inflight:    func(delta float64) { o.WireInflight.Add(delta) },
		RTT:         func(opcode string, seconds float64) { o.WireRTT.With(opcode).Observe(seconds) },
		Push:        func() { o.EpochPushes.Inc() },
		Subscribers: func(delta float64) { o.WireSubscribers.Add(delta) },
	}
}

// auditFlusher periodically flushes the buffered audit log until stop
// closes.
func auditFlusher(sys *activerbac.System, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := sys.SyncAudit(); err != nil {
				log.Print("rbacd: audit sync: ", err)
			}
		case <-stop:
			return
		}
	}
}

// debugMux serves the pprof suite; a dedicated mux (not the API mux, not
// http.DefaultServeMux) keeps profiling off the public listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs httpSrv on ln until a signal arrives, then shuts down
// gracefully: stop accepting connections, let in-flight requests finish
// (http.Server.Shutdown blocks until handlers return; the wire server
// drains its admitted frames the same way), quiesce the enforcement
// lanes so every admitted request's rule cascade settles, and only then
// write the snapshot. The audit log is closed afterwards by the
// caller's sys.Close. wireSrv may be nil.
func serve(sys *activerbac.System, httpSrv *http.Server, wireSrv *wire.Server, ln net.Listener,
	signals <-chan os.Signal, snapshotPath string) error {
	drained := make(chan struct{})
	go func() {
		<-signals
		log.Print("rbacd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		if wireSrv != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := wireSrv.Shutdown(ctx); err != nil {
					log.Print("rbacd: wire shutdown: ", err)
				}
			}()
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Print("rbacd: shutdown: ", err)
		}
		wg.Wait()
		close(drained)
	}()

	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-drained
	sys.Quiesce()
	if snapshotPath != "" {
		if err := sys.SaveState(snapshotPath); err != nil {
			log.Print("rbacd: snapshot: ", err)
		}
	}
	return nil
}

// server handles the HTTP API; the mutex serializes policy swaps
// against request handling (enforcement itself is already
// engine-serialized).
type server struct {
	mu          sync.RWMutex
	sys         *activerbac.System
	analyzeMode string
	verifyMode  string

	// verifyRes caches the last bounded-verification run (startup or
	// hot reload) for GET /v1/verify; guarded by mu.
	verifyRes activerbac.VerifyResult

	// Readiness state for /readyz: whether the live policy carries
	// error-severity analysis or verification findings (warn modes
	// serve it anyway, but readiness reports the degradation), and
	// whether the optional wire listener is configured and accepting.
	analyzeErrors  atomic.Bool
	verifyErrors   atomic.Bool
	wireConfigured bool
	wireReady      atomic.Bool

	// Replication role: exactly one of hub (leader) or rep (replica) is
	// set when -mode is in play; both are assigned before any listener
	// serves and read-only after.
	replica bool
	hub     *replicate.Hub
	rep     *replicate.Replica
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.mutating(s.createSession))
	mux.HandleFunc("DELETE /v1/sessions", s.mutating(s.deleteSession))
	mux.HandleFunc("POST /v1/activate", s.mutating(s.activate))
	mux.HandleFunc("POST /v1/deactivate", s.mutating(s.deactivate))
	mux.HandleFunc("GET /v1/check", s.check)
	mux.HandleFunc("POST /v1/check-batch", s.checkBatch)
	mux.HandleFunc("POST /v1/assign", s.mutating(s.assign))
	mux.HandleFunc("POST /v1/deassign", s.mutating(s.deassign))
	mux.HandleFunc("POST /v1/users", s.mutating(s.addUser))
	mux.HandleFunc("POST /v1/roles/enable", s.mutating(s.enableRole))
	mux.HandleFunc("POST /v1/roles/disable", s.mutating(s.disableRole))
	mux.HandleFunc("POST /v1/context", s.mutating(s.setContext))
	mux.HandleFunc("GET /v1/context", s.getContext)
	mux.HandleFunc("GET /v1/verify", s.verify)
	mux.HandleFunc("GET /v1/rules", s.rules)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /v1/fastpath", s.fastpath)
	mux.HandleFunc("GET /v1/alerts", s.alerts)
	mux.HandleFunc("GET /v1/policy", s.getPolicy)
	mux.HandleFunc("POST /v1/policy", s.mutating(s.putPolicy))
	mux.HandleFunc("GET /v1/replication", s.replication)
	mux.HandleFunc("GET /v1/traces", s.traces)
	mux.HandleFunc("GET /v1/traces/{id}", s.traceByID)
	mux.HandleFunc("GET /v1/slow", s.slow)
	mux.HandleFunc("GET /v1/analyze", s.analyze)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /readyz", s.readyz)
	return mux
}

// mutating guards a state-changing handler: a replica's store is a
// synced copy of the leader's, so every mutation answers 403 here and
// belongs at the leader. On a leader it is the identity.
func (s *server) mutating(h http.HandlerFunc) http.HandlerFunc {
	if !s.replica {
		return h
	}
	return func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusForbidden,
			map[string]string{"error": "replica is read-only; send mutations to the leader"})
	}
}

// replication serves the leader's replica registry.
func (s *server) replication(w http.ResponseWriter, _ *http.Request) {
	if s.hub == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "not a leader"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":    s.system().PushEpoch(),
		"replicas": s.hub.Status(),
	})
}

// request is the shared JSON request body shape.
type request struct {
	User    string `json:"user,omitempty"`
	Session string `json:"session,omitempty"`
	Role    string `json:"role,omitempty"`
}

func decode(w http.ResponseWriter, r *http.Request, into *request) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(into); err != nil {
		http.Error(w, `{"error":"bad request body"}`, http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps engine errors to HTTP statuses: denials are 403,
// missing entities 404, conflicts 409, the rest 500.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, activerbac.ErrDenied),
		errors.Is(err, activerbac.ErrUserLocked),
		errors.Is(err, activerbac.ErrSSD),
		errors.Is(err, activerbac.ErrDSD),
		errors.Is(err, activerbac.ErrCardinality):
		status = http.StatusForbidden
	case errors.Is(err, activerbac.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, activerbac.ErrExists):
		status = http.StatusConflict
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) system() *activerbac.System {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	sid, err := s.system().CreateSession(activerbac.UserID(req.User))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session": string(sid)})
}

func (s *server) deleteSession(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	if err := s.system().DeleteSession(activerbac.SessionID(req.Session)); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) activate(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	err := s.system().AddActiveRole(
		activerbac.UserID(req.User), activerbac.SessionID(req.Session), activerbac.RoleID(req.Role))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) deactivate(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	err := s.system().DropActiveRole(
		activerbac.UserID(req.User), activerbac.SessionID(req.Session), activerbac.RoleID(req.Role))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// Pre-encoded GET /v1/check bodies: the plain-check hot path below
// writes one of these instead of running json.Encoder per request.
var (
	checkBodyAllow = []byte("{\"allowed\":true}\n")
	checkBodyDeny  = []byte("{\"allowed\":false}\n")
)

// traceHeader is the HTTP carrier of a client-minted trace id: its
// presence forces a fully traced decision retained under that id.
const traceHeader = "X-Activerbac-Trace"

// traceID pulls a client-minted trace id off the request. ok is false
// only when the header is present but malformed (the caller answers
// 400); an absent header yields a zero id with ok true.
func traceID(w http.ResponseWriter, r *http.Request) (activerbac.TraceID, bool, bool) {
	h := r.Header.Get(traceHeader)
	if h == "" {
		return activerbac.TraceID{}, false, true
	}
	tid, err := activerbac.ParseTraceID(h)
	if err != nil || tid.IsZero() {
		http.Error(w, `{"error":"bad `+traceHeader+` header: want 32 hex chars, nonzero"}`, http.StatusBadRequest)
		return activerbac.TraceID{}, false, false
	}
	// Echo the id so callers correlate the response with /v1/traces/{id}.
	w.Header().Set(traceHeader, tid.String())
	return tid, true, true
}

func (s *server) check(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if purpose := q.Get("purpose"); purpose != "" {
		sid := activerbac.SessionID(q.Get("session"))
		perm := activerbac.Permission{Operation: q.Get("operation"), Object: q.Get("object")}
		allowed := s.system().CheckAccessForPurpose(sid, perm, purpose)
		writeJSON(w, http.StatusOK, map[string]bool{"allowed": allowed})
		return
	}
	if q.Get("explain") != "" {
		sid := activerbac.SessionID(q.Get("session"))
		perm := activerbac.Permission{Operation: q.Get("operation"), Object: q.Get("object")}
		ex := s.system().ExplainAccess(sid, perm)
		writeJSON(w, http.StatusOK, ex)
		return
	}
	// The plain check is the hot path: the string-tuple entry reaches
	// the zero-alloc DecideCheck fast path (no SessionID/Permission/
	// Params wrappers) and the verdict body is pre-encoded. A trace
	// header diverts onto the traced cascade instead.
	tid, traced, ok := traceID(w, r)
	if !ok {
		return
	}
	var allowed bool
	if traced {
		allowed = s.system().CheckAccessTupleTraced(q.Get("session"), q.Get("operation"), q.Get("object"), tid)
	} else {
		allowed = s.system().CheckAccessTuple(q.Get("session"), q.Get("operation"), q.Get("object"))
	}
	body := checkBodyDeny
	if allowed {
		body = checkBodyAllow
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// checkBatch decides a whole batch of access checks in one batch-native
// engine pass (System.CheckAccessBatch): one snapshot capture, one lane
// crossing per scope group. The batch size shares the wire protocol's
// MaxBatch bound so both transports accept the same frames.
func (s *server) checkBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Checks []activerbac.BatchCheck `json:"checks"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		http.Error(w, `{"error":"bad request body"}`, http.StatusBadRequest)
		return
	}
	if len(req.Checks) > wire.MaxBatch {
		http.Error(w, fmt.Sprintf(`{"error":"batch of %d exceeds max %d"}`, len(req.Checks), wire.MaxBatch),
			http.StatusBadRequest)
		return
	}
	tid, traced, ok := traceID(w, r)
	if !ok {
		return
	}
	var verdicts []bool
	if traced && len(req.Checks) > 0 {
		verdicts = s.system().CheckAccessBatchTraced(req.Checks, nil, tid)
	} else {
		verdicts = s.system().CheckAccessBatch(req.Checks, nil)
	}
	if verdicts == nil {
		verdicts = []bool{} // encode an empty batch as [], not null
	}
	writeJSON(w, http.StatusOK, map[string][]bool{"verdicts": verdicts})
}

func (s *server) assign(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	if err := s.system().AssignUser(activerbac.UserID(req.User), activerbac.RoleID(req.Role)); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) deassign(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	if err := s.system().DeassignUser(activerbac.UserID(req.User), activerbac.RoleID(req.Role)); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) addUser(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	if err := s.system().AddUser(activerbac.UserID(req.User)); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) enableRole(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	if err := s.system().EnableRole(activerbac.RoleID(req.Role)); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) disableRole(w http.ResponseWriter, r *http.Request) {
	var req request
	if !decode(w, r, &req) {
		return
	}
	if err := s.system().DisableRole(activerbac.RoleID(req.Role)); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// contextRequest carries environmental updates.
type contextRequest struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

func (s *server) setContext(w http.ResponseWriter, r *http.Request) {
	var req contextRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil || req.Key == "" {
		http.Error(w, `{"error":"want {\"key\":K,\"value\":V}"}`, http.StatusBadRequest)
		return
	}
	if err := s.system().SetContext(req.Key, req.Value); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) getContext(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, `{"error":"missing key parameter"}`, http.StatusBadRequest)
		return
	}
	value, ok := s.system().GetContext(key)
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "value": value, "set": ok})
}

// verify serves the live rule-pool consistency check plus the cached
// bounded-verification findings from the last startup or hot-reload
// run (empty when -verify=off). The legacy {ok, problems} fields keep
// their pre-verifier meaning extended by the new findings: ok is false
// when the pool is inconsistent or any finding is error severity.
func (s *server) verify(w http.ResponseWriter, _ *http.Request) {
	errs := s.system().VerifyRules()
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	s.mu.RLock()
	res := s.verifyRes
	s.mu.RUnlock()
	findings := res.Findings
	if findings == nil {
		findings = []activerbac.VerifyFinding{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        len(errs) == 0 && !activerbac.HasVerifyErrors(findings),
		"problems":  msgs,
		"mode":      s.verifyMode,
		"findings":  findings,
		"states":    res.States,
		"truncated": res.Truncated,
	})
}

func (s *server) rules(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.system().Rules())
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	sys := s.system()
	writeJSON(w, http.StatusOK, struct {
		activerbac.Stats
		Lanes []activerbac.LaneStat
	}{sys.Stats(), sys.LaneStats()})
}

func (s *server) fastpath(w http.ResponseWriter, _ *http.Request) {
	sys := s.system()
	st, err := sys.FastPathStats()
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		activerbac.FastPathStats
		SnapshotEpoch uint64 `json:"snapshotEpoch"`
	}{st, sys.SnapshotEpoch()})
}

func (s *server) alerts(w http.ResponseWriter, _ *http.Request) {
	alerts := s.system().Alerts()
	if alerts == nil {
		alerts = []activerbac.Alert{}
	}
	writeJSON(w, http.StatusOK, alerts)
}

func (s *server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.system().WriteMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	}
}

func (s *server) traces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			http.Error(w, `{"error":"bad n parameter"}`, http.StatusBadRequest)
			return
		}
		n = parsed
	}
	traces, err := s.system().RecentTraces(n)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	if traces == nil {
		traces = []activerbac.TraceData{}
	}
	writeJSON(w, http.StatusOK, traces)
}

// traceByID serves one retained trace by either identity: a 32-hex
// client-minted trace id (as sent in X-Activerbac-Trace or on the wire
// TRACE flag), or the ring's own numeric sequence id.
func (s *server) traceByID(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	var td activerbac.TraceData
	var ok bool
	var err error
	if tid, perr := activerbac.ParseTraceID(raw); perr == nil {
		td, ok, err = s.system().TraceByTraceID(tid)
	} else {
		id, perr := strconv.ParseUint(raw, 10, 64)
		if perr != nil {
			http.Error(w, `{"error":"bad trace id: want a ring id or 32 hex chars"}`, http.StatusBadRequest)
			return
		}
		td, ok, err = s.system().TraceByID(id)
	}
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "trace not retained"})
		return
	}
	writeJSON(w, http.StatusOK, td)
}

// slow serves the slow-decision ring, newest first.
func (s *server) slow(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			http.Error(w, `{"error":"bad n parameter"}`, http.StatusBadRequest)
			return
		}
		n = parsed
	}
	recs, err := s.system().SlowDecisions(n)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	if recs == nil {
		recs = []activerbac.SlowRecord{}
	}
	writeJSON(w, http.StatusOK, recs)
}

// healthz is pure liveness: the process is up and the handler runs.
func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
}

// laneReadyDepth is the per-lane queue depth beyond which /readyz
// reports the engine as backlogged and flips to 503 so load balancers
// shed traffic until the lanes drain.
const laneReadyDepth = 4096

// readyz is readiness: the policy is loaded and clean, the enforcement
// lanes are draining, and the wire listener (when configured) accepts.
func (s *server) readyz(w http.ResponseWriter, _ *http.Request) {
	var problems []string
	if s.analyzeErrors.Load() {
		problems = append(problems, "live policy has error-severity analysis findings")
	}
	if s.verifyErrors.Load() {
		problems = append(problems, "live policy has error-severity verification findings")
	}
	for _, ls := range s.system().LaneStats() {
		if ls.Depth > laneReadyDepth {
			problems = append(problems, fmt.Sprintf("lane %s backlogged: depth %d > %d", ls.Lane, ls.Depth, laneReadyDepth))
		}
	}
	if s.wireConfigured && !s.wireReady.Load() {
		problems = append(problems, "wire listener not accepting")
	}
	if s.rep != nil && !s.rep.Synced() {
		problems = append(problems, "replica awaiting first sync from leader")
	}
	if len(problems) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "problems": problems})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

func (s *server) getPolicy(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.system().PolicySource())
}

// analyze runs the static analyzer over the live system.
func (s *server) analyze(w http.ResponseWriter, _ *http.Request) {
	findings := s.system().Analyze()
	if findings == nil {
		findings = []activerbac.Finding{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       !activerbac.HasAnalysisErrors(findings),
		"findings": findings,
	})
}

func (s *server) putPolicy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		http.Error(w, `{"error":"bad body"}`, http.StatusBadRequest)
		return
	}
	// Hot-reload analysis gate: the incoming policy is compiled and
	// analyzed on a scratch engine *before* the live pool is touched.
	analyzeErrors := false
	if s.analyzeMode != "off" {
		findings, err := activerbac.AnalyzePolicy(string(body), time.Now())
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		for _, f := range findings {
			log.Print("rbacd: analyze: ", f)
		}
		analyzeErrors = activerbac.HasAnalysisErrors(findings)
		if s.analyzeMode == "strict" && analyzeErrors {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"error":    "policy rejected by static analysis",
				"findings": findings,
			})
			return
		}
	}
	// Hot-reload verification gate: the incoming policy's reachable
	// states are explored (and counterexamples replayed) on scratch
	// engines before the live pool is touched.
	verifyErrors := false
	var verifyRes activerbac.VerifyResult
	if s.verifyMode != "off" {
		res, err := activerbac.VerifyPolicy(string(body), activerbac.VerifyConfig{})
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		for _, f := range res.Findings {
			log.Print("rbacd: verify: ", f.String())
		}
		verifyRes = res
		verifyErrors = activerbac.HasVerifyErrors(res.Findings)
		if s.verifyMode == "strict" && verifyErrors {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"error":    "policy rejected by bounded verification",
				"findings": res.Findings,
			})
			return
		}
	}
	s.mu.Lock()
	rep, err := s.sys.ApplyPolicy(string(body))
	if err == nil && s.verifyMode != "off" {
		s.verifyRes = verifyRes
	}
	s.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
		return
	}
	s.analyzeErrors.Store(analyzeErrors)
	s.verifyErrors.Store(verifyErrors)
	writeJSON(w, http.StatusOK, rep)
}
