package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"activerbac"
	clientcache "activerbac/client"
	"activerbac/internal/wire"
)

// wireStressPolicy is the partitioned differential policy: eight flat
// worker roles with one permission each and 16 users spread across
// them, plus two churn roles the mutators flip without ever changing a
// worker verdict (C0 carries a GTRBAC shift window, C1 is flipped
// directly).
func wireStressPolicy(windowStart string) string {
	var b strings.Builder
	for r := 0; r < 8; r++ {
		fmt.Fprintf(&b, "role W%d\n", r)
		fmt.Fprintf(&b, "permission W%d: op%d obj%d\n", r, r, r)
	}
	b.WriteString("role C0\nrole C1\n")
	fmt.Fprintf(&b, "shift C0 %s-17:00:00\n", windowStart)
	for u := 0; u < 16; u++ {
		fmt.Fprintf(&b, "user u%02d: W%d\n", u, u%8)
	}
	return b.String()
}

// TestWireDifferential serves ONE live system over three enforcement
// paths at once — in-process CheckAccessTuple, rbacd's HTTP GET
// /v1/check, and the binary wire protocol (single CHECK frames and
// CHECK_BATCH) — and asserts after every check that all paths return
// the same verdict and that the verdict matches the worker's model,
// plus a periodic batch differential: one mixed batch (duplicates
// included) through the sequential per-tuple path, in-process
// CheckAccessBatch, HTTP POST /v1/check-batch, and the batch-native
// CHECK_BATCH wire path, all required to agree element-wise in input
// order, while churn goroutines hammer the invalidation machinery: equivalent
// policy hot-reloads through POST /v1/policy (exercising the server's
// swap lock against concurrent checks on every path), enable/disable
// flips of an unrelated role, and simulated-clock advances that swing a
// GTRBAC shift window. Run under -race this is the proof that the wire
// transport introduces no verdict skew and no memory unsafety.
//
// State is partitioned for determinism exactly like the fast-path
// stress test: each worker owns its user and session and only asserts
// about them; the churn touches nothing a worker verdict depends on.
func TestWireDifferential(t *testing.T) {
	epoch := time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC) // inside C0's shift
	sim := activerbac.NewSimClock(epoch)
	sys, err := activerbac.Open(wireStressPolicy("09:00:00"), &activerbac.Options{
		Clock:    sim,
		FastPath: true, // the wire path must agree with cached verdicts too
		// Sampled tracing at a vanishing rate: the trace machinery is live
		// (client-forced traces work, and the end-of-run traced
		// differential below needs it) but unsampled checks keep hitting
		// the verdict cache, so the fast-path assertions at the bottom
		// still hold.
		TraceBuffer: 256,
		TraceSample: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	srv := &server{sys: sys, analyzeMode: "off"}
	httpSrv := httptest.NewServer(srv.routes())
	defer httpSrv.Close()

	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wireSrv := wire.NewServer(wireBackend{srv}, nil)
	sys.OnEpochBump(wireSrv.NotifyEpoch)
	go wireSrv.Serve(wln)
	defer wireSrv.Close()
	wc, err := wire.Dial(wln.Addr().String(), &wire.ClientOptions{
		Conns: 4, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	// The cached-client participant: one embedded decision cache shared
	// by all workers, subscribed to epoch pushes, serving repeat allows
	// locally. Every expect() below runs it alongside the remote paths,
	// so a single stale locally-served allow is a unanimity failure.
	cc, err := clientcache.New(wln.Addr().String(), &clientcache.Options{
		Conns: 2, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if !cc.Subscribed() {
		t.Fatal("client cache did not subscribe")
	}

	httpCheck := func(session, operation, object string) (bool, error) {
		u := httpSrv.URL + "/v1/check?" + url.Values{
			"session": {session}, "operation": {operation}, "object": {object},
		}.Encode()
		resp, err := http.Get(u)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		var v struct {
			Allowed bool `json:"allowed"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return false, err
		}
		return v.Allowed, nil
	}

	httpCheckBatch := func(checks []activerbac.BatchCheck) ([]bool, error) {
		body, err := json.Marshal(struct {
			Checks []activerbac.BatchCheck `json:"checks"`
		}{checks})
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(httpSrv.URL+"/v1/check-batch", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var v struct {
			Verdicts []bool `json:"verdicts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			return nil, err
		}
		return v.Verdicts, nil
	}

	iters := 60
	if testing.Short() {
		iters = 20
	}

	var stop atomic.Bool
	var churn, workers sync.WaitGroup

	// Churn is throttled: each mutation quiesces lanes or bumps epochs,
	// and worker checks pay a network round trip per path, so unthrottled
	// mutator spins would starve the workers into a minutes-long run
	// without exercising anything extra. A pause of a few check RTTs
	// still interleaves invalidations into every worker's stream.
	const churnPause = 2 * time.Millisecond

	// Churn 1: equivalent policy hot-reloads over HTTP — only the churn
	// role's shift window differs, so worker verdicts never change, but
	// every reload takes the server's swap lock, regenerates the pool
	// and bumps the fast-path epoch under the checks' feet.
	altA, altB := wireStressPolicy("09:00:00"), wireStressPolicy("08:30:00")
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; !stop.Load(); i++ {
			time.Sleep(churnPause)
			next := altA
			if i%2 == 0 {
				next = altB
			}
			resp, err := http.Post(httpSrv.URL+"/v1/policy", "text/plain", strings.NewReader(next))
			if err != nil {
				t.Errorf("policy reload: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("policy reload: status %d", resp.StatusCode)
				return
			}
		}
	}()

	// Churn 2: flip the unrelated role C1 in-process.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; !stop.Load(); i++ {
			time.Sleep(churnPause)
			var err error
			if i%2 == 0 {
				err = sys.DisableRole("C1")
			} else {
				err = sys.EnableRole("C1")
			}
			if err != nil {
				t.Errorf("role flip: %v", err)
				return
			}
		}
	}()

	// Churn 3: swing C0's GTRBAC window via the simulated clock.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for !stop.Load() {
			time.Sleep(churnPause)
			sim.Advance(4 * time.Hour)
		}
	}()

	for w := 0; w < 16; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			user := activerbac.UserID(fmt.Sprintf("u%02d", w))
			role := activerbac.RoleID(fmt.Sprintf("W%d", w%8))
			ownOp, ownObj := fmt.Sprintf("op%d", w%8), fmt.Sprintf("obj%d", w%8)
			foreignOp, foreignObj := fmt.Sprintf("op%d", (w+1)%8), fmt.Sprintf("obj%d", (w+1)%8)

			open := func() (activerbac.SessionID, bool) {
				sid, err := sys.CreateSession(user)
				if err != nil {
					t.Errorf("worker %d: CreateSession: %v", w, err)
					return "", false
				}
				if err := sys.AddActiveRole(user, sid, role); err != nil {
					t.Errorf("worker %d: AddActiveRole: %v", w, err)
					return "", false
				}
				return sid, true
			}
			// awaitPush fences the cached client after a mutation that
			// flips one of this worker's own verdicts: push delivery is
			// asynchronous, so the worker waits until the cache's epoch
			// view has caught up with a push epoch captured AFTER the
			// mutation. Once it has, every allow cached before the
			// mutation carries an older tag and cannot be served — this
			// is exactly the "every push drops the cache before the next
			// divergent verdict" guarantee under test. (Steady-state
			// checks need no fence: churn never changes worker verdicts,
			// so a cached worker allow stays correct until the worker
			// itself mutates.)
			awaitPush := func(what string) bool {
				target := sys.PushEpoch()
				deadline := time.Now().Add(30 * time.Second)
				for cc.Subscribed() && cc.Epoch() < target {
					if time.Now().After(deadline) {
						t.Errorf("worker %d: %s: cache epoch %d never caught up to push epoch %d",
							w, what, cc.Epoch(), target)
						return false
					}
					time.Sleep(100 * time.Microsecond)
				}
				return true
			}

			// expect runs the same check over every path and requires
			// unanimity with the model.
			expect := func(sid activerbac.SessionID, op, obj string, want bool, what string) bool {
				inProc := sys.CheckAccessTuple(string(sid), op, obj)
				overHTTP, err := httpCheck(string(sid), op, obj)
				if err != nil {
					t.Errorf("worker %d: %s: http: %v", w, what, err)
					return false
				}
				overWire, err := wc.Check(string(sid), op, obj)
				if err != nil {
					t.Errorf("worker %d: %s: wire: %v", w, what, err)
					return false
				}
				batch, err := wc.CheckMany([]wire.CheckRequest{
					{Session: string(sid), Operation: op, Object: obj},
				})
				if err != nil || len(batch) != 1 {
					t.Errorf("worker %d: %s: wire batch: %v (%d verdicts)", w, what, err, len(batch))
					return false
				}
				overCached, err := cc.Check(string(sid), op, obj)
				if err != nil {
					t.Errorf("worker %d: %s: cached client: %v", w, what, err)
					return false
				}
				if inProc != overHTTP || inProc != overWire || inProc != batch[0] || inProc != overCached {
					t.Errorf("worker %d: %s: verdicts diverged: in-process=%v http=%v wire=%v wire-batch=%v cached=%v",
						w, what, inProc, overHTTP, overWire, batch[0], overCached)
					return false
				}
				if inProc != want {
					t.Errorf("worker %d: %s: verdict %v, model says %v", w, what, inProc, want)
					return false
				}
				return true
			}

			// expectBatch sends one mixed batch — own/foreign checks with
			// duplicates — over the in-process batch path, HTTP
			// /v1/check-batch, and the wire CHECK_BATCH (batch-native
			// backend), and requires every element to agree with the
			// sequential per-tuple path, in input order.
			expectBatch := func(sid activerbac.SessionID, wantOwn bool, what string) bool {
				checks := []activerbac.BatchCheck{
					{Session: string(sid), Operation: ownOp, Object: ownObj},
					{Session: string(sid), Operation: foreignOp, Object: foreignObj},
					{Session: string(sid), Operation: ownOp, Object: ownObj}, // duplicate of [0]
					{Session: string(sid), Operation: foreignOp, Object: foreignObj},
					{Session: string(sid), Operation: ownOp, Object: ownObj},
				}
				want := []bool{wantOwn, false, wantOwn, false, wantOwn}
				seq := make([]bool, len(checks))
				for i, c := range checks {
					seq[i] = sys.CheckAccessTuple(c.Session, c.Operation, c.Object)
				}
				inProc := sys.CheckAccessBatch(checks, nil)
				overHTTP, err := httpCheckBatch(checks)
				if err != nil {
					t.Errorf("worker %d: %s: http batch: %v", w, what, err)
					return false
				}
				reqs := make([]wire.CheckRequest, len(checks))
				for i, c := range checks {
					reqs[i] = wire.CheckRequest{Session: c.Session, Operation: c.Operation, Object: c.Object}
				}
				overWire, err := wc.CheckMany(reqs)
				if err != nil {
					t.Errorf("worker %d: %s: wire batch: %v", w, what, err)
					return false
				}
				if len(inProc) != len(checks) || len(overHTTP) != len(checks) || len(overWire) != len(checks) {
					t.Errorf("worker %d: %s: batch verdict counts: in-process=%d http=%d wire=%d, want %d",
						w, what, len(inProc), len(overHTTP), len(overWire), len(checks))
					return false
				}
				for i := range checks {
					if seq[i] != inProc[i] || seq[i] != overHTTP[i] || seq[i] != overWire[i] {
						t.Errorf("worker %d: %s: batch verdict[%d] diverged: sequential=%v in-process=%v http=%v wire=%v",
							w, what, i, seq[i], inProc[i], overHTTP[i], overWire[i])
						return false
					}
					if seq[i] != want[i] {
						t.Errorf("worker %d: %s: batch verdict[%d] = %v, model says %v", w, what, i, seq[i], want[i])
						return false
					}
				}
				return true
			}

			sid, ok := open()
			if !ok {
				return
			}
			for i := 0; i < iters; i++ {
				if !expect(sid, ownOp, ownObj, true, "own permission, role active") ||
					!expect(sid, foreignOp, foreignObj, false, "foreign permission") {
					return
				}
				if i%5 == 2 {
					if !expectBatch(sid, true, "batch, role active") {
						return
					}
				}
				if i%10 == 9 {
					// Flip the worker's own role: every path must see the
					// session-grade invalidation, not a stale ALLOW.
					if err := sys.DropActiveRole(user, sid, role); err != nil {
						t.Errorf("worker %d: DropActiveRole: %v", w, err)
						return
					}
					if !awaitPush("role dropped") {
						return
					}
					if !expect(sid, ownOp, ownObj, false, "own permission, role dropped") ||
						!expectBatch(sid, false, "batch, role dropped") {
						return
					}
					if err := sys.AddActiveRole(user, sid, role); err != nil {
						t.Errorf("worker %d: AddActiveRole: %v", w, err)
						return
					}
				}
				if i%25 == 24 {
					if err := sys.DeleteSession(sid); err != nil {
						t.Errorf("worker %d: DeleteSession: %v", w, err)
						return
					}
					if !awaitPush("session deleted") {
						return
					}
					if !expect(sid, ownOp, ownObj, false, "own permission, session deleted") {
						return
					}
					if sid, ok = open(); !ok {
						return
					}
				}
			}
		}(w)
	}

	workers.Wait()
	stop.Store(true)
	churn.Wait()

	// Quiescent cached-client epilogue: with the churn stopped, prove the
	// local serving path deterministically — under churn every epoch bump
	// retires the whole cache, so hit timing is probabilistic above. Seed
	// an allow, require the repeat to be served locally, then flip the
	// role and require the push to retire the entry before the next check.
	cacheEpilogue := func() {
		sid, err := sys.CreateSession("u00")
		if err != nil {
			t.Errorf("cache epilogue: CreateSession: %v", err)
			return
		}
		if err := sys.AddActiveRole("u00", sid, "W0"); err != nil {
			t.Errorf("cache epilogue: AddActiveRole: %v", err)
			return
		}
		await := func(what string) bool {
			target := sys.PushEpoch()
			deadline := time.Now().Add(30 * time.Second)
			for cc.Epoch() < target {
				if !cc.Subscribed() {
					t.Errorf("cache epilogue: %s: subscription lost", what)
					return false
				}
				if time.Now().After(deadline) {
					t.Errorf("cache epilogue: %s: cache epoch %d never caught up to %d", what, cc.Epoch(), target)
					return false
				}
				time.Sleep(100 * time.Microsecond)
			}
			return true
		}
		if !await("after session setup") {
			return
		}
		before := cc.Stats()
		for i := 0; i < 2; i++ {
			allowed, err := cc.Check(string(sid), "op0", "obj0")
			if err != nil || !allowed {
				t.Errorf("cache epilogue: check %d = (%v, %v), want (true, nil)", i, allowed, err)
				return
			}
		}
		if after := cc.Stats(); after.Hits == before.Hits {
			t.Error("cache epilogue: repeat allow was not served locally")
			return
		}
		if err := sys.DropActiveRole("u00", sid, "W0"); err != nil {
			t.Errorf("cache epilogue: DropActiveRole: %v", err)
			return
		}
		if !await("after role drop") {
			return
		}
		inProc := sys.CheckAccessTuple(string(sid), "op0", "obj0")
		cached, err := cc.Check(string(sid), "op0", "obj0")
		if err != nil {
			t.Errorf("cache epilogue: check after drop: %v", err)
			return
		}
		if inProc || cached {
			t.Errorf("cache epilogue: verdict after role drop: in-process=%v cached=%v, want false/false (stale allow served)",
				inProc, cached)
		}
	}
	cacheEpilogue()

	// The acceptance bar for the cached participant: the run must have
	// exercised it across at least 20 policy-epoch bumps. Invalidations
	// counts coalesced pushes observed by the cache; churn bumps the
	// epoch every couple of milliseconds for the whole worker phase, so
	// anything near the floor means the subscription was not live.
	if st := cc.Stats(); st.Invalidations < 20 {
		t.Errorf("client cache observed %d invalidations, want >= 20 epoch pushes across the churn phase", st.Invalidations)
	} else {
		t.Logf("client cache stats: hits=%d misses=%d invalidations=%d epoch=%d subscribed=%v",
			st.Hits, st.Misses, st.Invalidations, cc.Epoch(), cc.Subscribed())
	}

	// Traced differential: the same check forced onto the traced cascade
	// once per transport — a client-minted id via the X-Activerbac-Trace
	// header, and the same id mechanism via the wire TRACE flag — must
	// resolve at /v1/traces/{id} under each id with identical cascade
	// step sequences.
	fetchTrace := func(tid activerbac.TraceID) (activerbac.TraceData, bool) {
		resp, err := http.Get(httpSrv.URL + "/v1/traces/" + tid.String())
		if err != nil {
			t.Errorf("traced differential: fetch %s: %v", tid, err)
			return activerbac.TraceData{}, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("traced differential: /v1/traces/%s returned %d", tid, resp.StatusCode)
			return activerbac.TraceData{}, false
		}
		var td activerbac.TraceData
		if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
			t.Errorf("traced differential: decode trace %s: %v", tid, err)
			return activerbac.TraceData{}, false
		}
		return td, true
	}
	tracedDifferential := func() {
		sid, err := sys.CreateSession("u00")
		if err != nil {
			t.Errorf("traced differential: CreateSession: %v", err)
			return
		}
		if err := sys.AddActiveRole("u00", sid, "W0"); err != nil {
			t.Errorf("traced differential: AddActiveRole: %v", err)
			return
		}

		// HTTP: header-carried id.
		httpTID := activerbac.NewTraceID()
		req, err := http.NewRequest("GET", httpSrv.URL+"/v1/check?"+url.Values{
			"session": {string(sid)}, "operation": {"op0"}, "object": {"obj0"},
		}.Encode(), nil)
		if err != nil {
			t.Errorf("traced differential: build request: %v", err)
			return
		}
		req.Header.Set("X-Activerbac-Trace", httpTID.String())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("traced differential: http check: %v", err)
			return
		}
		echoed := resp.Header.Get("X-Activerbac-Trace")
		var v struct {
			Allowed bool `json:"allowed"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil || !v.Allowed {
			t.Errorf("traced differential: http check = (%v, %v), want allowed", v.Allowed, err)
			return
		}
		if echoed != httpTID.String() {
			t.Errorf("traced differential: header echo %q, want %q", echoed, httpTID)
			return
		}

		// Wire: TRACE-flagged CHECK with the same machinery.
		wireTID := activerbac.NewTraceID()
		allowed, err := wc.CheckTraced(string(sid), "op0", "obj0", wireTID)
		if err != nil || !allowed {
			t.Errorf("traced differential: wire CheckTraced = (%v, %v), want allowed", allowed, err)
			return
		}

		httpTD, ok := fetchTrace(httpTID)
		if !ok {
			return
		}
		wireTD, ok := fetchTrace(wireTID)
		if !ok {
			return
		}
		if httpTD.TraceID != httpTID.String() || wireTD.TraceID != wireTID.String() {
			t.Errorf("traced differential: trace ids %q/%q, want %q/%q",
				httpTD.TraceID, wireTD.TraceID, httpTID, wireTID)
			return
		}
		if len(httpTD.Steps) == 0 || !httpTD.Complete || !wireTD.Complete {
			t.Errorf("traced differential: incomplete traces: http %d steps complete=%v, wire %d steps complete=%v",
				len(httpTD.Steps), httpTD.Complete, len(wireTD.Steps), wireTD.Complete)
			return
		}
		// Identical cascades: same step count, and per step the same
		// kind/event/rule/outcome (timestamps naturally differ).
		if len(httpTD.Steps) != len(wireTD.Steps) {
			t.Errorf("traced differential: step counts diverged: http=%d wire=%d\nhttp: %+v\nwire: %+v",
				len(httpTD.Steps), len(wireTD.Steps), httpTD.Steps, wireTD.Steps)
			return
		}
		for i := range httpTD.Steps {
			h, w := httpTD.Steps[i], wireTD.Steps[i]
			if h.Kind != w.Kind || h.Event != w.Event || h.Rule != w.Rule || h.OK != w.OK {
				t.Errorf("traced differential: step %d diverged: http=%+v wire=%+v", i, h, w)
				return
			}
		}
	}
	tracedDifferential()

	if st, err := sys.FastPathStats(); err == nil {
		if st.Hits == 0 {
			t.Error("differential run never hit the verdict cache; the wire paths were not exercised against it")
		}
		if st.Invalidations == 0 {
			t.Error("differential run never invalidated the cache; the churn was not exercised")
		}
		t.Logf("fastpath stats: hits=%d misses=%d bypass=%d invalidations=%d epoch=%d",
			st.Hits, st.Misses, st.Bypass, st.Invalidations, st.Epoch)
	}
}

// TestWireEpochTracksReload: POLICY_VERSION over the wire must report
// the bumped snapshot epoch after a hot reload.
func TestWireEpochTracksReload(t *testing.T) {
	sys, err := activerbac.Open(wireStressPolicy("09:00:00"), &activerbac.Options{
		Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := &server{sys: sys, analyzeMode: "off"}
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wireSrv := wire.NewServer(wireBackend{srv}, nil)
	go wireSrv.Serve(wln)
	defer wireSrv.Close()
	wc, err := wire.Dial(wln.Addr().String(), &wire.ClientOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	before, err := wc.PolicyVersion()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ApplyPolicy(wireStressPolicy("08:30:00")); err != nil {
		t.Fatal(err)
	}
	after, err := wc.PolicyVersion()
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("epoch did not advance across reload: %d -> %d", before, after)
	}
}
