package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"activerbac"
)

// newObsServer builds a test server with metrics and tracing enabled,
// the way rbacd's run() opens the system.
func newObsServer(t *testing.T) *httptest.Server {
	t.Helper()
	sys, err := activerbac.Open(testPolicy, &activerbac.Options{
		Clock:       activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
		Lanes:       4,
		Metrics:     true,
		TraceBuffer: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := httptest.NewServer((&server{sys: sys}).routes())
	t.Cleanup(srv.Close)
	return srv
}

// driveTraffic produces a session, an activation and a few checks so
// metrics and traces have content.
func driveTraffic(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	var sess struct {
		Session string `json:"session"`
	}
	if code := call(t, srv, "POST", "/v1/sessions", `{"user":"bob"}`, &sess); code != 200 {
		t.Fatalf("create session: %d", code)
	}
	call(t, srv, "POST", "/v1/activate", `{"user":"bob","session":"`+sess.Session+`","role":"PC"}`, nil)
	var check struct {
		Allowed bool `json:"allowed"`
	}
	call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=write&object=po.dat", "", &check)
	call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=steal&object=secrets", "", &check)
	return sess.Session
}

// Prometheus text exposition format 0.0.4, the subset the registry
// emits: HELP/TYPE headers followed by samples of that family.
var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)
)

// parseProm validates body as Prometheus text format and returns the
// set of family names and a map from full sample line prefix to value.
func parseProm(t *testing.T, body string) (families map[string]string, samples map[string]float64) {
	t.Helper()
	families = make(map[string]string)
	samples = make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	current := ""
	sawHelp := false
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !promHelpRe.MatchString(line) {
				t.Fatalf("bad HELP line: %q", line)
			}
			sawHelp = true
		case strings.HasPrefix(line, "# TYPE "):
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if !sawHelp {
				t.Fatalf("TYPE before HELP: %q", line)
			}
			if _, dup := families[m[1]]; dup {
				t.Fatalf("family %s declared twice", m[1])
			}
			current = m[1]
			families[m[1]] = m[2]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unknown comment line: %q", line)
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("bad sample line: %q", line)
			}
			// A sample's metric name must extend the family under whose
			// headers it appears (histograms add _bucket/_sum/_count).
			if current == "" || !strings.HasPrefix(m[1], current) {
				t.Fatalf("sample %q outside its family block (current %q)", line, current)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil && !strings.Contains(m[3], "Inf") && m[3] != "NaN" {
				t.Fatalf("bad sample value in %q: %v", line, err)
			}
			samples[m[1]+m[2]] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families, samples
}

func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	srv := newObsServer(t)
	driveTraffic(t, srv)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families, samples := parseProm(t, string(body))

	// The documented metric catalog is present with the right types.
	want := map[string]string{
		"activerbac_decision_seconds":       "histogram",
		"activerbac_decisions_total":        "counter",
		"activerbac_traces_total":           "counter",
		"activerbac_lane_wait_seconds":      "histogram",
		"activerbac_lane_queue_depth":       "gauge",
		"activerbac_lane_queue_max_depth":   "gauge",
		"activerbac_lane_enqueued_total":    "counter",
		"activerbac_lane_processed_total":   "counter",
		"activerbac_operator_matches_total": "counter",
		"activerbac_events_raised_total":    "counter",
		"activerbac_events_detected_total":  "counter",
		"activerbac_rule_fired_total":       "counter",
		"activerbac_rule_allowed_total":     "counter",
		"activerbac_rule_denied_total":      "counter",
		"activerbac_rules":                  "gauge",
		"activerbac_users":                  "gauge",
		"activerbac_roles":                  "gauge",
		"activerbac_sessions":               "gauge",
		"activerbac_security_denials_total": "counter",
		"activerbac_security_alerts_total":  "counter",
		"activerbac_audit_append_seconds":   "histogram",
		"activerbac_audit_flush_seconds":    "histogram",
		"activerbac_audit_records_total":    "counter",

		"activerbac_fastpath_hits_total":          "counter",
		"activerbac_fastpath_misses_total":        "counter",
		"activerbac_fastpath_bypass_total":        "counter",
		"activerbac_fastpath_invalidations_total": "counter",
		"activerbac_snapshot_epoch":               "gauge",
	}
	for name, typ := range want {
		if families[name] != typ {
			t.Errorf("family %s: type %q, want %q", name, families[name], typ)
		}
	}

	// Traffic showed up: sessions gauge, decision counters, lane work.
	if samples["activerbac_sessions"] != 1 {
		t.Errorf("sessions = %v, want 1", samples["activerbac_sessions"])
	}
	if samples[`activerbac_decisions_total{event="req.checkAccess",verdict="allow"}`] < 1 {
		t.Errorf("no allowed checkAccess decision recorded: %v", samples)
	}
	if samples[`activerbac_decisions_total{event="req.checkAccess",verdict="deny"}`] < 1 {
		t.Errorf("no denied checkAccess decision recorded")
	}
	if samples["activerbac_traces_total"] < 3 {
		t.Errorf("traces_total = %v, want >= 3", samples["activerbac_traces_total"])
	}
	var laneWork float64
	for k, v := range samples {
		if strings.HasPrefix(k, "activerbac_lane_processed_total{") {
			laneWork += v
		}
	}
	if laneWork == 0 {
		t.Error("no lane throughput recorded")
	}

	// Histogram invariant: the +Inf bucket equals the count.
	for fam, typ := range families {
		if typ != "histogram" {
			continue
		}
		for k, v := range samples {
			if !strings.HasPrefix(k, fam+"_bucket{") || !strings.Contains(k, `le="+Inf"`) {
				continue
			}
			countKey := strings.Replace(k, "_bucket{", "_count{", 1)
			countKey = strings.Replace(countKey, `le="+Inf"`, "", 1)
			countKey = strings.Replace(countKey, `,}`, `}`, 1)
			if countKey == fam+"_count{}" {
				countKey = fam + "_count"
			}
			if c, ok := samples[countKey]; ok && c != v {
				t.Errorf("%s: +Inf bucket %v != count %v", k, v, c)
			}
		}
	}
}

// TestMetricsFastPathCounters scrapes a fast-path-enabled server (no
// trace ring — traced decisions always cascade) and asserts the cache
// counters move and still satisfy the strict Prometheus parse.
func TestMetricsFastPathCounters(t *testing.T) {
	sys, err := activerbac.Open(testPolicy, &activerbac.Options{
		Clock:    activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
		Lanes:    4,
		Metrics:  true,
		FastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := httptest.NewServer((&server{sys: sys}).routes())
	t.Cleanup(srv.Close)

	var sess struct {
		Session string `json:"session"`
	}
	if code := call(t, srv, "POST", "/v1/sessions", `{"user":"bob"}`, &sess); code != 200 {
		t.Fatalf("create session: %d", code)
	}
	call(t, srv, "POST", "/v1/activate", `{"user":"bob","session":"`+sess.Session+`","role":"PC"}`, nil)
	// First check misses and seeds the cache; the repeats hit.
	for i := 0; i < 5; i++ {
		call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=write&object=po.dat", "", nil)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, samples := parseProm(t, string(body))
	if samples["activerbac_fastpath_hits_total"] < 4 {
		t.Errorf("fastpath hits = %v, want >= 4", samples["activerbac_fastpath_hits_total"])
	}
	if samples["activerbac_fastpath_misses_total"] < 1 {
		t.Errorf("fastpath misses = %v, want >= 1", samples["activerbac_fastpath_misses_total"])
	}
	if samples["activerbac_snapshot_epoch"] < 1 {
		t.Errorf("snapshot epoch = %v, want >= 1", samples["activerbac_snapshot_epoch"])
	}
	// Policy churn invalidates: applying an identical policy touches no
	// rules, so grow it by one role to force regeneration, and re-scrape.
	if code := call(t, srv, "POST", "/v1/policy", testPolicy+"role Auditor\n", nil); code != 200 {
		t.Fatalf("apply policy: %d", code)
	}
	resp2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, samples2 := parseProm(t, string(body2))
	if samples2["activerbac_fastpath_invalidations_total"] <= samples["activerbac_fastpath_invalidations_total"] {
		t.Errorf("invalidations did not grow across a policy apply: %v -> %v",
			samples["activerbac_fastpath_invalidations_total"], samples2["activerbac_fastpath_invalidations_total"])
	}
}

func TestTraceEndpoints(t *testing.T) {
	srv := newObsServer(t)
	sess := driveTraffic(t, srv)

	var traces []activerbac.TraceData
	if code := call(t, srv, "GET", "/v1/traces", "", &traces); code != 200 || len(traces) < 3 {
		t.Fatalf("/v1/traces: code=%d n=%d", code, len(traces))
	}
	// Newest first, each complete, and the activation trace carries its
	// cascade (role-activation fan-out hops to the global lane).
	for i, td := range traces {
		if !td.Complete {
			t.Fatalf("trace %d incomplete", td.ID)
		}
		if i > 0 && td.ID > traces[i-1].ID {
			t.Fatalf("traces not newest-first: %d after %d", td.ID, traces[i-1].ID)
		}
	}
	var activation *activerbac.TraceData
	for i := range traces {
		if strings.Contains(traces[i].Event, "addActiveRole") {
			activation = &traces[i]
			break
		}
	}
	if activation == nil {
		t.Fatal("activation trace not retained")
	}
	if activation.Scope != sess {
		t.Fatalf("activation trace scope = %q, want %q", activation.Scope, sess)
	}
	var sawCascade bool
	for _, s := range activation.Steps {
		if s.Kind == "cascade" {
			sawCascade = true
		}
	}
	if !sawCascade {
		t.Fatalf("activation trace has no cascade step: %+v", activation.Steps)
	}

	// ?n= limits the result.
	if code := call(t, srv, "GET", "/v1/traces?n=1", "", &traces); code != 200 || len(traces) != 1 {
		t.Fatalf("/v1/traces?n=1: code=%d n=%d", code, len(traces))
	}
	if code := call(t, srv, "GET", "/v1/traces?n=bogus", "", nil); code != http.StatusBadRequest {
		t.Fatalf("bad n: code=%d", code)
	}

	// By id.
	var one activerbac.TraceData
	path := fmt.Sprintf("/v1/traces/%d", activation.ID)
	if code := call(t, srv, "GET", path, "", &one); code != 200 || one.ID != activation.ID {
		t.Fatalf("GET %s: code=%d id=%d", path, code, one.ID)
	}
	if len(one.Steps) != len(activation.Steps) {
		t.Fatalf("trace by id has %d steps, listing had %d", len(one.Steps), len(activation.Steps))
	}
	if code := call(t, srv, "GET", "/v1/traces/999999", "", nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: code=%d", code)
	}
	if code := call(t, srv, "GET", "/v1/traces/notanumber", "", nil); code != http.StatusBadRequest {
		t.Fatalf("bad id: code=%d", code)
	}
}

func TestObservabilityDisabled(t *testing.T) {
	// A server opened without Metrics/TraceBuffer answers 503 rather
	// than serving empty data.
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/metrics without observability: %d", resp.StatusCode)
	}
	if code := call(t, srv, "GET", "/v1/traces", "", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/v1/traces without observability: %d", code)
	}
}
