package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"activerbac"
)

const testPolicy = `
policy "enterprise-xyz"
role PM
role PC
role AC
role Clerk
hierarchy PM > PC > Clerk
ssd pa 2: PC, AC
permission PC: write po.dat
permission Clerk: read lobby.txt
user bob: PC
user carol: AC
threshold burst 3 in 10m: lock-user
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	sys, err := activerbac.Open(testPolicy, &activerbac.Options{
		Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := httptest.NewServer((&server{sys: sys}).routes())
	t.Cleanup(srv.Close)
	return srv
}

// call issues a JSON request and decodes the response into out.
func call(t *testing.T, srv *httptest.Server, method, path, body string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func TestSessionActivateCheckFlow(t *testing.T) {
	srv := newTestServer(t)
	var sess struct {
		Session string `json:"session"`
	}
	if code := call(t, srv, "POST", "/v1/sessions", `{"user":"bob"}`, &sess); code != 200 || sess.Session == "" {
		t.Fatalf("create session: code=%d sess=%+v", code, sess)
	}
	if code := call(t, srv, "POST", "/v1/activate",
		`{"user":"bob","session":"`+sess.Session+`","role":"PC"}`, nil); code != 200 {
		t.Fatalf("activate: code=%d", code)
	}
	var check struct {
		Allowed bool `json:"allowed"`
	}
	call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=write&object=po.dat", "", &check)
	if !check.Allowed {
		t.Fatal("write po.dat denied")
	}
	call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=read&object=lobby.txt", "", &check)
	if !check.Allowed {
		t.Fatal("inherited read denied")
	}
	call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=approve&object=po.dat", "", &check)
	if check.Allowed {
		t.Fatal("unauthorized operation allowed")
	}
	// Explainability: the denial names the rule and reason.
	var ex struct {
		Allowed bool
		Reason  string
		Votes   []struct{ Rule string }
	}
	call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=approve&object=po.dat&explain=1", "", &ex)
	if ex.Allowed || ex.Reason != "Permission Denied" || len(ex.Votes) != 1 || ex.Votes[0].Rule != "CA1" {
		t.Fatalf("explanation = %+v", ex)
	}
	if code := call(t, srv, "POST", "/v1/deactivate",
		`{"user":"bob","session":"`+sess.Session+`","role":"PC"}`, nil); code != 200 {
		t.Fatalf("deactivate: code=%d", code)
	}
	if code := call(t, srv, "DELETE", "/v1/sessions",
		`{"session":"`+sess.Session+`"}`, nil); code != 200 {
		t.Fatalf("delete session: code=%d", code)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	srv := newTestServer(t)
	// Denied activation: 403.
	var sess struct {
		Session string `json:"session"`
	}
	call(t, srv, "POST", "/v1/sessions", `{"user":"bob"}`, &sess)
	if code := call(t, srv, "POST", "/v1/activate",
		`{"user":"bob","session":"`+sess.Session+`","role":"AC"}`, nil); code != http.StatusForbidden {
		t.Fatalf("unauthorized activation: code=%d, want 403", code)
	}
	// Unknown user session: 403 (denied by rule).
	if code := call(t, srv, "POST", "/v1/sessions", `{"user":"ghost"}`, nil); code != http.StatusForbidden {
		t.Fatalf("ghost session: code=%d, want 403", code)
	}
	// SSD assignment: 403.
	if code := call(t, srv, "POST", "/v1/assign", `{"user":"carol","role":"PC"}`, nil); code != http.StatusForbidden {
		t.Fatalf("SSD assignment: code=%d, want 403", code)
	}
	// Duplicate user: 409.
	if code := call(t, srv, "POST", "/v1/users", `{"user":"bob"}`, nil); code != http.StatusConflict {
		t.Fatalf("duplicate user: code=%d, want 409", code)
	}
	// Bad body: 400.
	if code := call(t, srv, "POST", "/v1/activate", `{not json`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad body: code=%d, want 400", code)
	}
}

func TestIntrospectionEndpoints(t *testing.T) {
	srv := newTestServer(t)
	var rules []map[string]any
	if code := call(t, srv, "GET", "/v1/rules", "", &rules); code != 200 || len(rules) == 0 {
		t.Fatalf("rules: code=%d n=%d", code, len(rules))
	}
	var stats map[string]any
	if code := call(t, srv, "GET", "/v1/stats", "", &stats); code != 200 {
		t.Fatalf("stats: code=%d", code)
	}
	if stats["Roles"].(float64) != 4 {
		t.Fatalf("stats = %v", stats)
	}
	var alerts []any
	if code := call(t, srv, "GET", "/v1/alerts", "", &alerts); code != 200 || alerts == nil {
		t.Fatalf("alerts: code=%d %v", code, alerts)
	}
}

func TestStatsReportLanes(t *testing.T) {
	sys, err := activerbac.Open(testPolicy, &activerbac.Options{
		Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
		Lanes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := httptest.NewServer((&server{sys: sys}).routes())
	t.Cleanup(srv.Close)

	var sess struct {
		Session string `json:"session"`
	}
	call(t, srv, "POST", "/v1/sessions", `{"user":"bob"}`, &sess)
	var check struct {
		Allowed bool `json:"allowed"`
	}
	call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=read&object=lobby.txt", "", &check)

	var stats struct {
		Roles float64
		Lanes []struct {
			Lane      string
			Enqueued  float64
			Processed float64
		}
	}
	if code := call(t, srv, "GET", "/v1/stats", "", &stats); code != 200 {
		t.Fatalf("stats: code=%d", code)
	}
	if stats.Roles != 4 {
		t.Fatalf("stats roles = %v", stats.Roles)
	}
	// Global lane plus 4 scope lanes, each with throughput counters; the
	// traffic above must show up somewhere.
	if len(stats.Lanes) != 5 || stats.Lanes[0].Lane != "global" {
		t.Fatalf("lanes = %+v", stats.Lanes)
	}
	var processed float64
	for _, l := range stats.Lanes {
		if l.Processed != l.Enqueued {
			t.Fatalf("lane %s not drained: %+v", l.Lane, l)
		}
		processed += l.Processed
	}
	if processed == 0 {
		t.Fatal("no lane traffic recorded")
	}
}

// TestGracefulShutdown proves an in-flight decision completes during
// shutdown: a request is held inside the handler while SIGTERM-style
// shutdown begins, then released; the client must still receive the
// correct verdict and serve must return cleanly.
func TestGracefulShutdown(t *testing.T) {
	sys, err := activerbac.Open(testPolicy, &activerbac.Options{
		Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
		Lanes: activerbac.LanesAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })

	var sess struct {
		Session string `json:"session"`
	}
	pre := httptest.NewServer((&server{sys: sys}).routes())
	call(t, pre, "POST", "/v1/sessions", `{"user":"bob"}`, &sess)
	call(t, pre, "POST", "/v1/activate", `{"user":"bob","session":"`+sess.Session+`","role":"PC"}`, nil)
	pre.Close()

	inflight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	inner := (&server{sys: sys}).routes()
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		once.Do(func() { close(inflight) })
		<-release
		inner.ServeHTTP(w, r)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	signals := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() {
		served <- serve(sys, &http.Server{Handler: handler}, nil, ln, signals, "")
	}()

	type verdict struct {
		code int
		body string
	}
	got := make(chan verdict, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() +
			"/v1/check?session=" + sess.Session + "&operation=write&object=po.dat")
		if err != nil {
			got <- verdict{code: -1, body: err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- verdict{code: resp.StatusCode, body: string(b)}
	}()

	<-inflight              // the decision is now in-flight
	signals <- os.Interrupt // begin graceful shutdown
	time.Sleep(50 * time.Millisecond)
	close(release) // let the held handler proceed

	select {
	case v := <-got:
		if v.code != 200 || !strings.Contains(v.body, `"allowed":true`) {
			t.Fatalf("in-flight decision lost: code=%d body=%q", v.code, v.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after shutdown")
	}
}

func TestAssignDeassignAndRoleState(t *testing.T) {
	srv := newTestServer(t)
	if code := call(t, srv, "POST", "/v1/users", `{"user":"dave"}`, nil); code != 200 {
		t.Fatalf("add user: %d", code)
	}
	if code := call(t, srv, "POST", "/v1/assign", `{"user":"dave","role":"Clerk"}`, nil); code != 200 {
		t.Fatalf("assign: %d", code)
	}
	if code := call(t, srv, "POST", "/v1/deassign", `{"user":"dave","role":"Clerk"}`, nil); code != 200 {
		t.Fatalf("deassign: %d", code)
	}
	if code := call(t, srv, "POST", "/v1/roles/disable", `{"role":"PC"}`, nil); code != 200 {
		t.Fatalf("disable: %d", code)
	}
	if code := call(t, srv, "POST", "/v1/roles/enable", `{"role":"PC"}`, nil); code != 200 {
		t.Fatalf("enable: %d", code)
	}
}

func TestPolicyEndpoints(t *testing.T) {
	srv := newTestServer(t)
	// GET returns the loaded source.
	resp, err := http.Get(srv.URL + "/v1/policy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "enterprise-xyz") {
		t.Fatalf("policy body: %q", body)
	}

	// POST applies a change and returns the regeneration report.
	edited := strings.Replace(testPolicy, "permission PC: write po.dat",
		"permission PC: write po.dat\ncardinality PC 3", 1)
	req, _ := http.NewRequest("POST", srv.URL+"/v1/policy", strings.NewReader(edited))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rep struct {
		RolesRegenerated []string
	}
	if err := json.NewDecoder(resp2.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != 200 || len(rep.RolesRegenerated) != 1 || rep.RolesRegenerated[0] != "PC" {
		t.Fatalf("apply: code=%d report=%+v", resp2.StatusCode, rep)
	}

	// A broken policy is rejected with 422 and the engine keeps serving.
	req2, _ := http.NewRequest("POST", srv.URL+"/v1/policy", strings.NewReader("role A\nrole A"))
	resp3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad policy: code=%d, want 422", resp3.StatusCode)
	}
	var stats map[string]any
	if code := call(t, srv, "GET", "/v1/stats", "", &stats); code != 200 {
		t.Fatalf("stats after bad policy: %d", code)
	}
}

func TestContextAndVerifyEndpoints(t *testing.T) {
	srv := newTestServer(t)
	if code := call(t, srv, "POST", "/v1/context", `{"key":"site","value":"hq"}`, nil); code != 200 {
		t.Fatalf("set context: %d", code)
	}
	var got struct {
		Key   string `json:"key"`
		Value string `json:"value"`
		Set   bool   `json:"set"`
	}
	if code := call(t, srv, "GET", "/v1/context?key=site", "", &got); code != 200 || !got.Set || got.Value != "hq" {
		t.Fatalf("get context: code=%d got=%+v", code, got)
	}
	if code := call(t, srv, "GET", "/v1/context?key=unset", "", &got); code != 200 || got.Set {
		t.Fatalf("unset key: code=%d got=%+v", code, got)
	}
	if code := call(t, srv, "GET", "/v1/context", "", nil); code != http.StatusBadRequest {
		t.Fatalf("missing key: %d", code)
	}
	if code := call(t, srv, "POST", "/v1/context", `{}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty key: %d", code)
	}
	var ver struct {
		OK       bool     `json:"ok"`
		Problems []string `json:"problems"`
	}
	if code := call(t, srv, "GET", "/v1/verify", "", &ver); code != 200 || !ver.OK {
		t.Fatalf("verify: code=%d %+v", code, ver)
	}
}

// violatingPolicyPath is the seeded-unsafe example: one user authorized
// for both members of a DSoD set, exploitable only across sessions.
const violatingPolicyPath = "../../examples/policies/sod-violating.acp"

// TestVerifyStrictRefusesSeededPolicy: rbacd started on the seeded
// SoD-violating example with -verify=strict must refuse to come up,
// before any listener opens.
func TestVerifyStrictRefusesSeededPolicy(t *testing.T) {
	err := run(config{
		policyPath:  violatingPolicyPath,
		addr:        "127.0.0.1:0",
		analyzeMode: "off",
		verifyMode:  "strict",
	})
	if err == nil {
		t.Fatal("strict verify gate accepted the seeded SoD-violating policy")
	}
	if !strings.Contains(err.Error(), "verification") {
		t.Fatalf("startup error should blame verification, got: %v", err)
	}
}

// TestVerifyWarnServesCounterexample: in warn mode the server comes up
// degraded and serves the finding with its replayable counterexample at
// GET /v1/verify.
func TestVerifyWarnServesCounterexample(t *testing.T) {
	src, err := os.ReadFile(violatingPolicyPath)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := activerbac.Open(string(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	res, err := sys.Verify(activerbac.VerifyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := &server{sys: sys, analyzeMode: "off", verifyMode: "warn", verifyRes: res}
	srv.verifyErrors.Store(activerbac.HasVerifyErrors(res.Findings))
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	var ver struct {
		OK       bool   `json:"ok"`
		Mode     string `json:"mode"`
		States   int    `json:"states"`
		Findings []struct {
			Code           string `json:"code"`
			Severity       string `json:"severity"`
			Counterexample *struct {
				Steps []struct {
					Op      string `json:"op"`
					Session string `json:"session"`
					Role    string `json:"role"`
				} `json:"steps"`
			} `json:"counterexample"`
		} `json:"findings"`
	}
	if code := call(t, ts, "GET", "/v1/verify", "", &ver); code != 200 {
		t.Fatalf("verify: code=%d", code)
	}
	if ver.OK || ver.Mode != "warn" || ver.States == 0 {
		t.Fatalf("verify payload: %+v", ver)
	}
	var found bool
	for _, f := range ver.Findings {
		if f.Code != "RV101" {
			continue
		}
		found = true
		if f.Severity != "error" {
			t.Fatalf("RV101 severity = %q", f.Severity)
		}
		if f.Counterexample == nil || len(f.Counterexample.Steps) < 4 {
			t.Fatalf("RV101 counterexample missing or too short: %+v", f.Counterexample)
		}
		steps := f.Counterexample.Steps
		if steps[0].Op != "session" || steps[len(steps)-1].Op != "activate" {
			t.Fatalf("unexpected counterexample shape: %+v", steps)
		}
		// The bypass needs two distinct sessions.
		if steps[len(steps)-1].Session == steps[len(steps)-2].Session {
			t.Fatalf("counterexample does not split across sessions: %+v", steps)
		}
	}
	if !found {
		t.Fatalf("no RV101 finding served: %+v", ver.Findings)
	}

	// The degradation shows up on /readyz.
	var ready struct {
		Ready    bool     `json:"ready"`
		Problems []string `json:"problems"`
	}
	if code := call(t, ts, "GET", "/readyz", "", &ready); code != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("readyz: code=%d %+v", code, ready)
	}
}

// TestVerifyStrictHotReloadRejected: a strict server vets an incoming
// policy on scratch engines and rejects a reachable violation with 422,
// keeping the live policy untouched.
func TestVerifyStrictHotReloadRejected(t *testing.T) {
	sys, err := activerbac.Open(testPolicy, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	srv := &server{sys: sys, analyzeMode: "off", verifyMode: "strict"}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	src, err := os.ReadFile(violatingPolicyPath)
	if err != nil {
		t.Fatal(err)
	}
	var rej struct {
		Error    string            `json:"error"`
		Findings []json.RawMessage `json:"findings"`
	}
	if code := call(t, ts, "POST", "/v1/policy", string(src), &rej); code != http.StatusUnprocessableEntity {
		t.Fatalf("hot reload of violating policy: code=%d, want 422", code)
	}
	if rej.Error == "" || len(rej.Findings) == 0 {
		t.Fatalf("rejection payload: %+v", rej)
	}
	// Live policy is untouched.
	resp, err := http.Get(ts.URL + "/v1/policy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "enterprise-xyz") {
		t.Fatalf("live policy changed after rejected reload: %q", body)
	}
}

func TestActiveSecurityOverHTTP(t *testing.T) {
	srv := newTestServer(t)
	var sess struct {
		Session string `json:"session"`
	}
	call(t, srv, "POST", "/v1/sessions", `{"user":"bob"}`, &sess)
	var check struct {
		Allowed bool `json:"allowed"`
	}
	for i := 0; i < 3; i++ {
		call(t, srv, "GET", "/v1/check?session="+sess.Session+"&operation=steal&object=secrets", "", &check)
	}
	var alerts []map[string]any
	call(t, srv, "GET", "/v1/alerts", "", &alerts)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
	// The locked user cannot open a new session: 403.
	if code := call(t, srv, "POST", "/v1/sessions", `{"user":"bob"}`, nil); code != http.StatusForbidden {
		t.Fatalf("locked session creation: code=%d, want 403", code)
	}
}
