package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"activerbac"
	clientcache "activerbac/client"
	"activerbac/internal/replicate"
	"activerbac/internal/wire"
)

// replicaNode is one read replica assembled exactly the way rbacd's
// -mode=replica run() does: an empty-bootstrapped System, the server
// marked read-only, a sync loop installing through replicaApplier, and
// the node's own HTTP + wire listeners serving checks from the local
// snapshot.
type replicaNode struct {
	name     string
	sys      *activerbac.System
	srv      *server
	rep      *replicate.Replica
	httpSrv  *httptest.Server
	wc       *wire.Client
	wireAddr string
}

func startReplicaNode(t *testing.T, name, leaderAddr string, epoch time.Time) *replicaNode {
	t.Helper()
	sys, err := activerbac.Open("", &activerbac.Options{
		Clock:    activerbac.NewSimClock(epoch),
		FastPath: true,
	})
	if err != nil {
		t.Fatalf("%s: open: %v", name, err)
	}
	t.Cleanup(func() { sys.Close() })

	srv := &server{sys: sys, analyzeMode: "off", verifyMode: "off", replica: true}
	rep, err := replicate.StartReplica(replicate.ReplicaOptions{
		Name:       name,
		LeaderAddr: leaderAddr,
		Applier:    replicaApplier{srv},
	})
	if err != nil {
		t.Fatalf("%s: start replica: %v", name, err)
	}
	t.Cleanup(func() { rep.Close() })
	srv.rep = rep

	httpSrv := httptest.NewServer(srv.routes())
	t.Cleanup(httpSrv.Close)

	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("%s: wire listener: %v", name, err)
	}
	// A replica's wire backend is the plain one — SYNC is unsupported
	// here; only the leader serves snapshots. Local epoch bumps (each
	// installed snapshot is one) still push to subscribed client caches.
	wireSrv := wire.NewServer(wireBackend{srv}, nil)
	sys.OnEpochBump(wireSrv.NotifyEpoch)
	go wireSrv.Serve(wln)
	t.Cleanup(func() { wireSrv.Close() })

	wc, err := wire.Dial(wln.Addr().String(), &wire.ClientOptions{
		Conns: 2, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("%s: dial: %v", name, err)
	}
	t.Cleanup(func() { wc.Close() })

	return &replicaNode{name: name, sys: sys, srv: srv, rep: rep, httpSrv: httpSrv,
		wc: wc, wireAddr: wln.Addr().String()}
}

func (n *replicaNode) httpCheck(session, operation, object string) (bool, error) {
	u := n.httpSrv.URL + "/v1/check?" + url.Values{
		"session": {session}, "operation": {operation}, "object": {object},
	}.Encode()
	resp, err := http.Get(u)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var v struct {
		Allowed bool `json:"allowed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return false, err
	}
	return v.Allowed, nil
}

func (n *replicaNode) httpCheckBatch(checks []activerbac.BatchCheck) ([]bool, error) {
	body, err := json.Marshal(struct {
		Checks []activerbac.BatchCheck `json:"checks"`
	}{checks})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(n.httpSrv.URL+"/v1/check-batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var v struct {
		Verdicts []bool `json:"verdicts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return v.Verdicts, nil
}

// TestReplicaDifferential is the replication acceptance run: ONE leader
// system under the full churn battery (equivalent policy hot-reloads
// over HTTP, enable/disable flips of an unrelated role, simulated-clock
// swings of a GTRBAC shift window, per-worker session-grade mutations)
// streams its state to THREE replicas over real TCP SYNC, and every
// worker verdict must be unanimous across the leader's in-process path
// and every replica's HTTP, wire, wire-batch and embedded-client-cache
// paths.
//
// Convergence is bounded, not instantaneous: replication is
// asynchronous, so after a mutation that changes one of its OWN
// verdicts a worker fences — it captures the leader push epoch and
// waits until every replica's applied epoch reaches it (and the cached
// client's epoch view reaches the replica-local push epoch that
// install produced). Steady-state checks need no fence because the
// churn never changes a worker verdict and replica applied epochs only
// move forward past each worker's last fence. Run under -race this is
// the proof that a read fleet introduces no verdict skew: reads may be
// stale by in-flight epochs, but never wrong for longer than one
// bounded sync window.
func TestReplicaDifferential(t *testing.T) {
	epoch := time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC) // inside C0's shift
	sim := activerbac.NewSimClock(epoch)
	sys, err := activerbac.Open(wireStressPolicy("09:00:00"), &activerbac.Options{
		Clock:    sim,
		FastPath: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Leader: hub + SYNC-capable wire backend, exactly as run() builds it.
	srv := &server{sys: sys, analyzeMode: "off"}
	srv.hub = replicate.NewHub(sys, nil)
	httpSrv := httptest.NewServer(srv.routes())
	defer httpSrv.Close()

	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wireSrv := wire.NewServer(leaderWireBackend{wireBackend{srv}, srv.hub}, nil)
	sys.OnEpochBump(wireSrv.NotifyEpoch)
	go wireSrv.Serve(wln)
	defer wireSrv.Close()
	leaderAddr := wln.Addr().String()

	nodes := []*replicaNode{
		startReplicaNode(t, "site-a", leaderAddr, epoch),
		startReplicaNode(t, "site-b", leaderAddr, epoch),
		startReplicaNode(t, "site-c", leaderAddr, epoch),
	}

	// The cached-client participant rides on site-a: repeat allows served
	// locally from the replica, retired by the replica's local epoch
	// pushes (each installed snapshot bumps one).
	cc, err := clientcache.New(nodes[0].wireAddr, &clientcache.Options{
		Conns: 2, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if !cc.Subscribed() {
		t.Fatal("client cache did not subscribe to replica")
	}

	// First convergence: all replicas must reach the leader's boot state
	// before any worker starts.
	awaitSynced := func() bool {
		target := sys.PushEpoch()
		deadline := time.Now().Add(30 * time.Second)
		for _, n := range nodes {
			for n.rep.AppliedEpoch() < target || !n.rep.Synced() {
				if time.Now().After(deadline) {
					t.Errorf("replica %s never reached leader epoch %d (applied %d, synced %v)",
						n.name, target, n.rep.AppliedEpoch(), n.rep.Synced())
					return false
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
		return true
	}
	if !awaitSynced() {
		t.FailNow()
	}

	iters := 32
	if testing.Short() {
		iters = 12
	}

	var stop atomic.Bool
	var churn, workers sync.WaitGroup
	const churnPause = 2 * time.Millisecond

	// Churn 1: equivalent policy hot-reloads through the LEADER's HTTP
	// endpoint — every reload re-serializes a snapshot the fleet must
	// re-pull, so the sync path is continuously under full-transfer load,
	// not just session-delta acks.
	altA, altB := wireStressPolicy("09:00:00"), wireStressPolicy("08:30:00")
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; !stop.Load(); i++ {
			time.Sleep(churnPause)
			next := altA
			if i%2 == 0 {
				next = altB
			}
			resp, err := http.Post(httpSrv.URL+"/v1/policy", "text/plain", strings.NewReader(next))
			if err != nil {
				t.Errorf("policy reload: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("policy reload: status %d", resp.StatusCode)
				return
			}
		}
	}()

	// Churn 2: flip the unrelated role C1 on the leader.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; !stop.Load(); i++ {
			time.Sleep(churnPause)
			var err error
			if i%2 == 0 {
				err = sys.DisableRole("C1")
			} else {
				err = sys.EnableRole("C1")
			}
			if err != nil {
				t.Errorf("role flip: %v", err)
				return
			}
		}
	}()

	// Churn 3: swing C0's GTRBAC window via the leader's simulated clock.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for !stop.Load() {
			time.Sleep(churnPause)
			sim.Advance(4 * time.Hour)
		}
	}()

	for w := 0; w < 8; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			user := activerbac.UserID(fmt.Sprintf("u%02d", w))
			role := activerbac.RoleID(fmt.Sprintf("W%d", w%8))
			ownOp, ownObj := fmt.Sprintf("op%d", w%8), fmt.Sprintf("obj%d", w%8)
			foreignOp, foreignObj := fmt.Sprintf("op%d", (w+1)%8), fmt.Sprintf("obj%d", (w+1)%8)

			// fence bounds the convergence window after one of this
			// worker's OWN mutations: every replica must apply a snapshot
			// at or past the leader epoch the mutation produced, and the
			// cached client must observe site-a's resulting local push.
			fence := func(what string) bool {
				target := sys.PushEpoch()
				deadline := time.Now().Add(30 * time.Second)
				for _, n := range nodes {
					for n.rep.AppliedEpoch() < target {
						if time.Now().After(deadline) {
							t.Errorf("worker %d: %s: replica %s stuck at epoch %d, leader at %d",
								w, what, n.name, n.rep.AppliedEpoch(), target)
							return false
						}
						time.Sleep(200 * time.Microsecond)
					}
				}
				ccTarget := nodes[0].sys.PushEpoch()
				for cc.Subscribed() && cc.Epoch() < ccTarget {
					if time.Now().After(deadline) {
						t.Errorf("worker %d: %s: cache epoch %d never caught up to replica push epoch %d",
							w, what, cc.Epoch(), ccTarget)
						return false
					}
					time.Sleep(200 * time.Microsecond)
				}
				return true
			}

			open := func() (activerbac.SessionID, bool) {
				sid, err := sys.CreateSession(user)
				if err != nil {
					t.Errorf("worker %d: CreateSession: %v", w, err)
					return "", false
				}
				if err := sys.AddActiveRole(user, sid, role); err != nil {
					t.Errorf("worker %d: AddActiveRole: %v", w, err)
					return "", false
				}
				return sid, fence("session opened")
			}

			// expect runs the same check on the leader and over every
			// replica's every path, and requires unanimity with the model.
			expect := func(sid activerbac.SessionID, op, obj string, want bool, what string) bool {
				leader := sys.CheckAccessTuple(string(sid), op, obj)
				if leader != want {
					t.Errorf("worker %d: %s: leader verdict %v, model says %v", w, what, leader, want)
					return false
				}
				for _, n := range nodes {
					overHTTP, err := n.httpCheck(string(sid), op, obj)
					if err != nil {
						t.Errorf("worker %d: %s: %s http: %v", w, what, n.name, err)
						return false
					}
					overWire, err := n.wc.Check(string(sid), op, obj)
					if err != nil {
						t.Errorf("worker %d: %s: %s wire: %v", w, what, n.name, err)
						return false
					}
					batch, err := n.wc.CheckMany([]wire.CheckRequest{
						{Session: string(sid), Operation: op, Object: obj},
					})
					if err != nil || len(batch) != 1 {
						t.Errorf("worker %d: %s: %s wire batch: %v (%d verdicts)", w, what, n.name, err, len(batch))
						return false
					}
					if overHTTP != want || overWire != want || batch[0] != want {
						t.Errorf("worker %d: %s: %s diverged from leader: http=%v wire=%v batch=%v leader=%v",
							w, what, n.name, overHTTP, overWire, batch[0], want)
						return false
					}
				}
				overCached, err := cc.Check(string(sid), op, obj)
				if err != nil {
					t.Errorf("worker %d: %s: cached client: %v", w, what, err)
					return false
				}
				if overCached != want {
					t.Errorf("worker %d: %s: cached client diverged: %v, leader %v", w, what, overCached, want)
					return false
				}
				return true
			}

			// expectBatch sends one mixed batch (duplicates included) to
			// every replica's HTTP and wire batch paths and requires
			// element-wise agreement with the leader's sequential verdicts.
			expectBatch := func(sid activerbac.SessionID, wantOwn bool, what string) bool {
				checks := []activerbac.BatchCheck{
					{Session: string(sid), Operation: ownOp, Object: ownObj},
					{Session: string(sid), Operation: foreignOp, Object: foreignObj},
					{Session: string(sid), Operation: ownOp, Object: ownObj}, // duplicate of [0]
					{Session: string(sid), Operation: ownOp, Object: ownObj},
				}
				want := []bool{wantOwn, false, wantOwn, wantOwn}
				for i, c := range checks {
					if got := sys.CheckAccessTuple(c.Session, c.Operation, c.Object); got != want[i] {
						t.Errorf("worker %d: %s: leader batch[%d] = %v, model says %v", w, what, i, got, want[i])
						return false
					}
				}
				reqs := make([]wire.CheckRequest, len(checks))
				for i, c := range checks {
					reqs[i] = wire.CheckRequest{Session: c.Session, Operation: c.Operation, Object: c.Object}
				}
				for _, n := range nodes {
					overHTTP, err := n.httpCheckBatch(checks)
					if err != nil {
						t.Errorf("worker %d: %s: %s http batch: %v", w, what, n.name, err)
						return false
					}
					overWire, err := n.wc.CheckMany(reqs)
					if err != nil {
						t.Errorf("worker %d: %s: %s wire batch: %v", w, what, n.name, err)
						return false
					}
					if len(overHTTP) != len(checks) || len(overWire) != len(checks) {
						t.Errorf("worker %d: %s: %s batch counts http=%d wire=%d, want %d",
							w, what, n.name, len(overHTTP), len(overWire), len(checks))
						return false
					}
					for i := range checks {
						if overHTTP[i] != want[i] || overWire[i] != want[i] {
							t.Errorf("worker %d: %s: %s batch[%d] diverged: http=%v wire=%v want=%v",
								w, what, n.name, i, overHTTP[i], overWire[i], want[i])
							return false
						}
					}
				}
				return true
			}

			sid, ok := open()
			if !ok {
				return
			}
			for i := 0; i < iters; i++ {
				if !expect(sid, ownOp, ownObj, true, "own permission, role active") ||
					!expect(sid, foreignOp, foreignObj, false, "foreign permission") {
					return
				}
				if i%4 == 1 {
					if !expectBatch(sid, true, "batch, role active") {
						return
					}
				}
				if i%8 == 7 {
					// Flip the worker's own role on the leader: within one
					// fenced sync window every replica path must see the
					// deny, not a stale replicated ALLOW.
					if err := sys.DropActiveRole(user, sid, role); err != nil {
						t.Errorf("worker %d: DropActiveRole: %v", w, err)
						return
					}
					if !fence("role dropped") {
						return
					}
					if !expect(sid, ownOp, ownObj, false, "own permission, role dropped") ||
						!expectBatch(sid, false, "batch, role dropped") {
						return
					}
					if err := sys.AddActiveRole(user, sid, role); err != nil {
						t.Errorf("worker %d: AddActiveRole: %v", w, err)
						return
					}
					if !fence("role restored") {
						return
					}
				}
				if i%16 == 15 {
					if err := sys.DeleteSession(sid); err != nil {
						t.Errorf("worker %d: DeleteSession: %v", w, err)
						return
					}
					if !fence("session deleted") {
						return
					}
					if !expect(sid, ownOp, ownObj, false, "own permission, session deleted") {
						return
					}
					if sid, ok = open(); !ok {
						return
					}
				}
			}
		}(w)
	}

	workers.Wait()
	stop.Store(true)
	churn.Wait()

	// Final convergence + fleet health: the registry the leader serves at
	// GET /v1/replication must list all three replicas connected with
	// zero lag once the churn quiesces.
	if !awaitSynced() {
		t.FailNow()
	}
	resp, err := http.Get(httpSrv.URL + "/v1/replication")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg struct {
		Epoch    uint64                    `json:"epoch"`
		Replicas []replicate.ReplicaStatus `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.Replicas) != 3 {
		t.Fatalf("registry lists %d replicas, want 3: %+v", len(reg.Replicas), reg.Replicas)
	}
	for _, rs := range reg.Replicas {
		if !rs.Connected {
			t.Errorf("replica %s marked disconnected in registry", rs.Name)
		}
	}
	for _, n := range nodes {
		if !n.rep.Synced() || !n.rep.Connected() {
			t.Errorf("replica %s ended synced=%v connected=%v", n.name, n.rep.Synced(), n.rep.Connected())
		}
		if n.rep.Syncs() < 10 {
			t.Errorf("replica %s applied only %d snapshots across the churn run", n.name, n.rep.Syncs())
		}
		// POLICY_VERSION on a replica advertises the applied LEADER epoch
		// — the number a fleet operator compares across sites.
		v, err := n.wc.PolicyVersion()
		if err != nil {
			t.Errorf("replica %s: PolicyVersion: %v", n.name, err)
		} else if v != n.rep.AppliedEpoch() {
			t.Errorf("replica %s: POLICY_VERSION %d, applied epoch %d", n.name, v, n.rep.AppliedEpoch())
		}
	}
	// Quiescent cached-client epilogue: with the churn (and therefore the
	// replica's install stream) stopped, the local serving path is
	// deterministic — a repeat allow must be served from the embedded
	// cache, and a role drop must retire it through the replica's local
	// push before the next check.
	sid, err := sys.CreateSession("u00")
	if err != nil {
		t.Fatalf("cache epilogue: CreateSession: %v", err)
	}
	if err := sys.AddActiveRole("u00", sid, "W0"); err != nil {
		t.Fatalf("cache epilogue: AddActiveRole: %v", err)
	}
	awaitCache := func(what string) {
		t.Helper()
		if !awaitSynced() {
			t.FailNow()
		}
		ccTarget := nodes[0].sys.PushEpoch()
		deadline := time.Now().Add(30 * time.Second)
		for cc.Subscribed() && cc.Epoch() < ccTarget {
			if time.Now().After(deadline) {
				t.Fatalf("cache epilogue: %s: cache epoch %d never caught up to %d", what, cc.Epoch(), ccTarget)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	awaitCache("after session setup")
	before := cc.Stats()
	for i := 0; i < 2; i++ {
		allowed, err := cc.Check(string(sid), "op0", "obj0")
		if err != nil || !allowed {
			t.Fatalf("cache epilogue: check %d = (%v, %v), want (true, nil)", i, allowed, err)
		}
	}
	if after := cc.Stats(); after.Hits == before.Hits {
		t.Error("cache epilogue: repeat allow was not served locally by the replica-attached cache")
	}
	if err := sys.DropActiveRole("u00", sid, "W0"); err != nil {
		t.Fatalf("cache epilogue: DropActiveRole: %v", err)
	}
	awaitCache("after role drop")
	if cached, err := cc.Check(string(sid), "op0", "obj0"); err != nil || cached {
		t.Errorf("cache epilogue: verdict after role drop = (%v, %v), want (false, nil) — stale replicated allow served", cached, err)
	}

	if st := cc.Stats(); st.Invalidations == 0 {
		t.Errorf("cached client on replica observed no invalidations across the churn run")
	} else {
		t.Logf("cached client on replica: hits=%d misses=%d invalidations=%d", st.Hits, st.Misses, st.Invalidations)
	}
}

// TestReplicaReadOnlyAndReadiness covers the replica server's guard
// rails without a live leader: every mutating endpoint answers 403,
// /readyz stays 503 until the first sync lands, and /v1/replication is
// a leader-only endpoint.
func TestReplicaReadOnlyAndReadiness(t *testing.T) {
	sys, err := activerbac.Open("", &activerbac.Options{
		Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 30, 0, 0, time.UTC)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// A leader address nothing listens on: grab a port and release it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	srv := &server{sys: sys, analyzeMode: "off", replica: true}
	rep, err := replicate.StartReplica(replicate.ReplicaOptions{
		Name: "orphan", LeaderAddr: deadAddr, Applier: replicaApplier{srv},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	srv.rep = rep

	httpSrv := httptest.NewServer(srv.routes())
	defer httpSrv.Close()

	resp, err := http.Get(httpSrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz before first sync: %d, want 503", resp.StatusCode)
	}

	for _, ep := range []string{
		"/v1/sessions", "/v1/activate", "/v1/assign", "/v1/users",
		"/v1/roles/enable", "/v1/context", "/v1/policy",
	} {
		resp, err := http.Post(httpSrv.URL+ep, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatalf("POST %s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("POST %s on replica: %d, want 403", ep, resp.StatusCode)
		}
	}

	resp, err = http.Get(httpSrv.URL + "/v1/replication")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/replication on replica: %d, want 404", resp.StatusCode)
	}
}
