package activerbac_test

import (
	"strings"
	"testing"

	"activerbac"
)

// TestExportInstallSyncSnapshot is the facade half of replication: a
// snapshot exported from one system installs into another (bootstrapped
// empty, as rbacd's replica mode does) and reproduces policy, state and
// verdicts exactly — sessions included.
func TestExportInstallSyncSnapshot(t *testing.T) {
	leader := openXYZ(t)
	sid, err := leader.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.AddActiveRole("bob", sid, "PC"); err != nil {
		t.Fatal(err)
	}

	epoch, data, err := leader.ExportSyncSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != leader.PushEpoch() {
		t.Fatalf("export epoch %d, push epoch %d", epoch, leader.PushEpoch())
	}
	if src, err := activerbac.SyncSnapshotPolicy(data); err != nil || src != leader.PolicySource() {
		t.Fatalf("SyncSnapshotPolicy = (%d bytes, %v)", len(src), err)
	}

	replica, err := activerbac.Open("", &activerbac.Options{Clock: activerbac.NewSimClock(t0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { replica.Close() })
	if err := replica.InstallSyncSnapshot(data); err != nil {
		t.Fatal(err)
	}

	// The leader's session answers identically on the replica.
	write := activerbac.Permission{Operation: "write", Object: "purchase-order.dat"}
	if !replica.CheckAccess(sid, write) {
		t.Fatal("replicated session denied on replica")
	}
	if replica.CheckAccess(sid, activerbac.Permission{Operation: "approve", Object: "x"}) {
		t.Fatal("replica allows what leader denies")
	}
	if len(replica.Rules()) != len(leader.Rules()) {
		t.Fatalf("rules: replica %d, leader %d", len(replica.Rules()), len(leader.Rules()))
	}
	if errs := replica.CheckInvariants(); len(errs) != 0 {
		t.Fatalf("replica invariants: %v", errs)
	}

	// A second install over existing state (the steady-state resync) is
	// idempotent.
	if err := replica.InstallSyncSnapshot(data); err != nil {
		t.Fatalf("re-install: %v", err)
	}
	if !replica.CheckAccess(sid, write) {
		t.Fatal("verdict lost on re-install")
	}

	// Corrupt payloads reject without touching the policy.
	if err := replica.InstallSyncSnapshot(data[:len(data)/2]); err == nil {
		t.Fatal("truncated snapshot installed")
	}
	if replica.PolicySource() != leader.PolicySource() {
		t.Fatal("failed install clobbered the policy")
	}
	bad := strings.Replace(string(data), "role PM", "rule PM", 1)
	if err := replica.InstallSyncSnapshot([]byte(bad)); err == nil {
		t.Fatal("snapshot with broken policy installed")
	}
}
