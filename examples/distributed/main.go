// Distributed enforcement: the paper's future-work item — one
// enterprise policy enforced at several sites. Each site runs its own
// Sentinel+ engine with its own sessions; the cluster distributes every
// policy change, and each site regenerates its rules incrementally.
// Content-hash versions make convergence observable.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"activerbac"
	"activerbac/internal/cluster"
)

const globalPolicy = `
policy "acme-global"
role Engineer
role Auditor
dsd eng-audit 2: Engineer, Auditor
permission Engineer: deploy service
user ivy: Engineer
user omar: Auditor
`

func main() {
	opts := func() *activerbac.Options {
		return &activerbac.Options{
			Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
		}
	}
	c, err := cluster.New("hq", globalPolicy, opts())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for _, site := range []string{"eu-west", "apac"} {
		if _, err := c.AddFollower(site, opts()); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("cluster status (policy version per site):")
	for name, v := range c.Status() {
		fmt.Printf("  %-8s %s\n", name, v)
	}
	fmt.Printf("converged: %v\n\n", c.Converged())

	// Sessions are local to each site.
	eu, _ := c.Follower("eu-west")
	sid, err := eu.System.CreateSession("ivy")
	if err != nil {
		log.Fatal(err)
	}
	must(eu.System.AddActiveRole("ivy", sid, "Engineer"))
	fmt.Printf("ivy deploys from eu-west: %v\n",
		eu.System.CheckAccess(sid, activerbac.Permission{Operation: "deploy", Object: "service"}))
	fmt.Printf("the same session at hq:   %v (sessions stay local)\n\n",
		c.Primary().System.CheckAccess(sid, activerbac.Permission{Operation: "deploy", Object: "service"}))

	// One policy edit reaches every site.
	fmt.Println("policy change: Engineer gets a 2-activation cardinality, everywhere")
	rep, err := c.ApplyPolicy(globalPolicy + "cardinality Engineer 2\n")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  primary regeneration: %s\n", rep)
	fmt.Printf("  converged: %v, new version %s\n", c.Converged(), c.Version())

	// Every site's own rule pool verifies against the new policy.
	for _, n := range c.Nodes() {
		fmt.Printf("  %-8s rules=%d verified=%v\n",
			n.Name, len(n.System.Rules()), len(n.System.VerifyRules()) == 0)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
