// Distributed enforcement: the paper's future-work item — one
// enterprise policy enforced at several sites — over the real
// replication protocol. A leader serves SYNC snapshots on a loopback
// wire listener; two replicas bootstrap empty, pull the policy and the
// full compiled state (sessions included), and then serve checks
// entirely from their local snapshots, resyncing on every epoch push.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"activerbac"
	"activerbac/internal/replicate"
	"activerbac/internal/wire"
)

const globalPolicy = `
policy "acme-global"
role Engineer
role Auditor
dsd eng-audit 2: Engineer, Auditor
permission Engineer: deploy service
user ivy: Engineer
user omar: Auditor
`

// leaderBackend adapts the leader system + hub to the wire server's
// optional-interface upgrades (sync, push, replica tracking).
type leaderBackend struct {
	sys *activerbac.System
	hub *replicate.Hub
}

func (b leaderBackend) Check(s, op, obj string) bool { return b.sys.CheckAccessTuple(s, op, obj) }
func (b leaderBackend) PolicyEpoch() uint64          { return b.sys.SnapshotEpoch() }
func (b leaderBackend) PushEpoch() uint64            { return b.sys.PushEpoch() }
func (b leaderBackend) SyncSnapshot(name string, applied uint64) (wire.SyncState, error) {
	return b.hub.SyncSnapshot(name, applied)
}
func (b leaderBackend) ReplicaDisconnected(name string) { b.hub.ReplicaDisconnected(name) }

// installer is the replica-side applier: verified snapshots install
// straight through the facade (rbacd additionally gates them through
// analyze/verify first).
type installer struct{ sys *activerbac.System }

func (i installer) Apply(data []byte) error { return i.sys.InstallSyncSnapshot(data) }

func main() {
	clock := activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
	leader, err := activerbac.Open(globalPolicy, &activerbac.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer leader.Close()

	hub := replicate.NewHub(leader, nil)
	srv := wire.NewServer(leaderBackend{sys: leader, hub: hub}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	leader.OnEpochBump(srv.NotifyEpoch)

	// Two replica sites bootstrap empty; the first sync brings policy,
	// assignments and sessions.
	type site struct {
		name string
		sys  *activerbac.System
		rep  *replicate.Replica
	}
	var sites []site
	for _, name := range []string{"eu-west", "apac"} {
		sys, err := activerbac.Open("", &activerbac.Options{Clock: clock})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := replicate.StartReplica(replicate.ReplicaOptions{
			Name: name, LeaderAddr: ln.Addr().String(), Applier: installer{sys},
		})
		if err != nil {
			log.Fatal(err)
		}
		sites = append(sites, site{name, sys, rep})
	}
	defer func() {
		for _, s := range sites {
			s.rep.Close()
			s.sys.Close()
		}
	}()

	// converged waits until every replica has applied the leader's
	// current push epoch.
	converged := func() {
		target := leader.PushEpoch()
		for _, s := range sites {
			for s.rep.AppliedEpoch() < target {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	converged()

	// A session created at the leader replicates: any replica can
	// answer for it, reads scale with replica count.
	sid, err := leader.CreateSession("ivy")
	if err != nil {
		log.Fatal(err)
	}
	must(leader.AddActiveRole("ivy", sid, "Engineer"))
	converged()
	deploy := activerbac.Permission{Operation: "deploy", Object: "service"}
	fmt.Println("ivy's leader session, checked at every site from local state:")
	fmt.Printf("  %-8s %v\n", "leader", leader.CheckAccess(sid, deploy))
	for _, s := range sites {
		fmt.Printf("  %-8s %v (applied epoch %d)\n", s.name, s.sys.CheckAccess(sid, deploy), s.rep.AppliedEpoch())
	}

	// One policy edit reaches every site through one coalesced sync.
	fmt.Println("\npolicy change: Engineer gets a 2-activation cardinality, everywhere")
	if _, err := leader.ApplyPolicy(globalPolicy + "cardinality Engineer 2\n"); err != nil {
		log.Fatal(err)
	}
	converged()
	for _, s := range sites {
		fmt.Printf("  %-8s rules=%d verified=%v\n",
			s.name, len(s.sys.Rules()), len(s.sys.VerifyRules()) == 0)
	}

	fmt.Println("\nleader registry (GET /v1/replication in rbacd):")
	for _, st := range hub.Status() {
		fmt.Printf("  %-8s applied=%d lag=%d connected=%v\n", st.Name, st.AppliedEpoch, st.Lag, st.Connected)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
