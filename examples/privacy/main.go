// Privacy-aware RBAC: the paper's privacy extension — permissions bound
// to business purposes organized in a hierarchy, and objects that
// require data-subject consent. A doctor may read a chart for
// treatment (and its sub-purpose diagnosis) once the patient consents;
// the marketing department never gets it.
//
// Run with:
//
//	go run ./examples/privacy
package main

import (
	"fmt"
	"log"
	"time"

	"activerbac"
)

const clinicPolicy = `
policy "clinic"
role Doctor
role Marketer

permission Doctor: read chart.dat
permission Marketer: read chart.dat   # core RBAC would allow this...

purpose treatment
purpose diagnosis < treatment
purpose billing < treatment
purpose marketing

bind Doctor read chart.dat for treatment
bind Marketer read chart.dat for marketing

consent-required chart.dat

user dora: Doctor
user mark: Marketer
`

func main() {
	sys, err := activerbac.Open(clinicPolicy, &activerbac.Options{
		Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	chart := activerbac.Permission{Operation: "read", Object: "chart.dat"}

	doraSid, err := sys.CreateSession("dora")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddActiveRole("dora", doraSid, "Doctor"); err != nil {
		log.Fatal(err)
	}
	markSid, err := sys.CreateSession("mark")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddActiveRole("mark", markSid, "Marketer"); err != nil {
		log.Fatal(err)
	}

	show := func(who string, sid activerbac.SessionID, purpose string) {
		ok := sys.CheckAccessForPurpose(sid, chart, purpose)
		verdict := "DENIED"
		if ok {
			verdict = "allowed"
		}
		fmt.Printf("  %-5s read chart.dat for %-10s -> %s\n", who, purpose, verdict)
	}

	fmt.Println("before the patient consents:")
	show("dora", doraSid, "treatment")
	show("mark", markSid, "marketing")

	fmt.Println("\npatient consents to use for treatment:")
	if err := sys.GrantConsent("chart.dat", "treatment"); err != nil {
		log.Fatal(err)
	}
	show("dora", doraSid, "treatment")
	show("dora", doraSid, "diagnosis") // sub-purpose covered by treatment
	show("dora", doraSid, "marketing") // doctor's binding doesn't cover it
	show("mark", markSid, "marketing") // consent doesn't cover marketing

	fmt.Println("\nplain core-RBAC decision for comparison (no purpose semantics):")
	fmt.Printf("  mark read chart.dat -> %v  <- why privacy-aware RBAC matters\n",
		sys.CheckAccess(markSid, chart))

	fmt.Println("\npatient withdraws consent:")
	if err := sys.RevokeConsent("chart.dat", "treatment"); err != nil {
		log.Fatal(err)
	}
	show("dora", doraSid, "treatment")
}
