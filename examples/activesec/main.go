// Active security: the paper's Section 4.3.3 scenarios —
//
//   - transaction-based activation (Rule 9): junior employees can hold
//     the JuniorEmp role only while a Manager is active, and lose it the
//     moment the last manager signs off;
//   - an intrusion threshold: five denied requests within ten minutes
//     lock the offending user, without administrator intervention.
//
// Run with:
//
//	go run ./examples/activesec
package main

import (
	"fmt"
	"log"
	"time"

	"activerbac"
)

const opsPolicy = `
policy "ops-floor"
role Manager
role JuniorEmp
role SysAdmin
role SysAudit

permission JuniorEmp: read tickets.db
permission Manager: write tickets.db

user mia: Manager
user jay: JuniorEmp
user mallory: JuniorEmp

require JuniorEmp needs-active Manager
couple SysAdmin -> SysAudit

threshold intrusion-burst 5 in 10m: lock-user
`

func main() {
	sim := activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
	sys, err := activerbac.Open(opsPolicy, &activerbac.Options{Clock: sim})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// --- Rule 9: transaction-based activation --------------------------
	fmt.Println("— transaction-based activation (JuniorEmp needs an active Manager) —")
	jaySid, err := sys.CreateSession("jay")
	if err != nil {
		log.Fatal(err)
	}
	err = sys.AddActiveRole("jay", jaySid, "JuniorEmp")
	fmt.Printf("before the manager arrives: %v\n", err)

	miaSid, err := sys.CreateSession("mia")
	if err != nil {
		log.Fatal(err)
	}
	must(sys.AddActiveRole("mia", miaSid, "Manager"))
	must(sys.AddActiveRole("jay", jaySid, "JuniorEmp"))
	fmt.Println("manager active: jay holds JuniorEmp")

	must(sys.DropActiveRole("mia", miaSid, "Manager"))
	roles, _ := sys.SessionRoles(jaySid)
	fmt.Printf("manager signed off: jay's active roles = %v (revoked automatically)\n\n", roles)

	// --- Rule 8: SysAdmin/SysAudit coupling -----------------------------
	fmt.Println("— post-condition coupling (SysAdmin requires SysAudit) —")
	fmt.Printf("enable SysAdmin -> SysAudit enabled = %v\n", func() bool {
		must(sys.EnableRole("SysAdmin"))
		return sys.RoleEnabled("SysAudit")
	}())
	must(sys.DisableRole("SysAudit"))
	fmt.Printf("disable SysAudit -> SysAdmin enabled = %v (both or neither)\n\n", sys.RoleEnabled("SysAdmin"))

	// --- Intrusion threshold --------------------------------------------
	fmt.Println("— active security: 5 denials in 10m lock the user —")
	malSid, err := sys.CreateSession("mallory")
	if err != nil {
		log.Fatal(err)
	}
	secret := activerbac.Permission{Operation: "read", Object: "payroll.db"}
	for i := 1; i <= 5; i++ {
		sim.Advance(30 * time.Second)
		allowed := sys.CheckAccess(malSid, secret)
		fmt.Printf("  probe %d at %s: allowed=%v locked=%v\n",
			i, sim.Now().Format("15:04:05"), allowed, sys.UserLocked("mallory"))
	}
	for _, a := range sys.Alerts() {
		fmt.Printf("ALERT %s\n", a)
	}
	// Locked out entirely — even the legitimate ticket database.
	mia2, err := sys.CreateSession("mia")
	if err != nil {
		log.Fatal(err)
	}
	must(sys.AddActiveRole("mia", mia2, "Manager"))
	fmt.Printf("mallory legitimate request while locked: %v\n",
		sys.CheckAccess(malSid, activerbac.Permission{Operation: "read", Object: "tickets.db"}))
	if _, err := sys.CreateSession("mallory"); err != nil {
		fmt.Printf("mallory new session: %v\n", err)
	}
	// The administrator reviews the audit trail and unlocks.
	must(sys.UnlockUser("mallory"))
	fmt.Printf("after unlock, mallory locked = %v\n", sys.UserLocked("mallory"))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
