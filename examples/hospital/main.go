// Hospital: the paper's Generalized Temporal RBAC scenarios (Section
// 4.3.2) in one ward —
//
//   - a day-doctor shift (periodic role enabling, 10:00-17:00),
//   - a 2-hour per-activation bound on the Nurse role (Rule 7's
//     "car parking" duration constraint),
//   - disabling-time SoD: Nurse and Doctor must never both be disabled
//     during clinic hours (Rule 6).
//
// A simulated clock drives the day in milliseconds of wall time.
//
// Run with:
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"time"

	"activerbac"
)

const wardPolicy = `
policy "city-hospital"
role Doctor
role Nurse
role DayDoctor

permission Doctor: prescribe medication
permission Nurse: read chart.dat
permission DayDoctor: staff clinic

user dora: Doctor
user nick: Nurse
user dana: DayDoctor

shift DayDoctor 10:00:00-17:00:00
duration * Nurse 2h
timesod ward-coverage 10:00:00-17:00:00: Nurse, Doctor
`

func main() {
	day := func(h, m int) time.Time { return time.Date(2026, 7, 6, h, m, 0, 0, time.UTC) }
	sim := activerbac.NewSimClock(day(8, 0))
	sys, err := activerbac.Open(wardPolicy, &activerbac.Options{Clock: sim})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	clock := func() string { return sim.Now().Format("15:04") }

	// --- The day-doctor shift ------------------------------------------
	fmt.Println("— periodic role enabling (shift DayDoctor 10:00-17:00) —")
	danaSid, err := sys.CreateSession("dana")
	if err != nil {
		log.Fatal(err)
	}
	err = sys.AddActiveRole("dana", danaSid, "DayDoctor")
	fmt.Printf("[%s] dana activates DayDoctor: %v\n", clock(), err)

	sim.AdvanceTo(day(10, 0))
	err = sys.AddActiveRole("dana", danaSid, "DayDoctor")
	fmt.Printf("[%s] dana activates DayDoctor: %v\n", clock(), errOrOK(err))

	// --- Nurse duration bound ------------------------------------------
	fmt.Println("\n— per-activation duration (Nurse limited to 2h) —")
	nickSid, err := sys.CreateSession("nick")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddActiveRole("nick", nickSid, "Nurse"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%s] nick activates Nurse\n", clock())
	sim.AdvanceTo(day(11, 30))
	fmt.Printf("[%s] nurse chart access: %v\n", clock(),
		sys.CheckAccess(nickSid, activerbac.Permission{Operation: "read", Object: "chart.dat"}))
	sim.AdvanceTo(day(12, 1))
	roles, _ := sys.SessionRoles(nickSid)
	fmt.Printf("[%s] 2h elapsed: nick's active roles = %v (timer deactivated the role)\n", clock(), roles)
	fmt.Printf("[%s] nurse chart access: %v\n", clock(),
		sys.CheckAccess(nickSid, activerbac.Permission{Operation: "read", Object: "chart.dat"}))

	// --- Disabling-time SoD --------------------------------------------
	fmt.Println("\n— disabling-time SoD (Nurse, Doctor within 10:00-17:00) —")
	fmt.Printf("[%s] disable Doctor: %v\n", clock(), errOrOK(sys.DisableRole("Doctor")))
	fmt.Printf("[%s] disable Nurse:  %v  <- the ward must keep one role available\n",
		clock(), sys.DisableRole("Nurse"))
	fmt.Printf("[%s] enable Doctor:  %v\n", clock(), errOrOK(sys.EnableRole("Doctor")))
	fmt.Printf("[%s] disable Nurse:  %v\n", clock(), errOrOK(sys.DisableRole("Nurse")))

	// After hours, the constraint window is closed.
	sim.AdvanceTo(day(18, 0))
	fmt.Printf("[%s] after hours, disable Doctor too: %v\n", clock(), errOrOK(sys.DisableRole("Doctor")))

	// The shift machinery kept running: DayDoctor went down at 17:00.
	fmt.Printf("\n[%s] DayDoctor enabled = %v (shift ended at 17:00)\n", clock(), sys.RoleEnabled("DayDoctor"))
}

func errOrOK(err error) string {
	if err != nil {
		return err.Error()
	}
	return "ok"
}
