// Pervasive computing: the paper's context-aware scenarios — "when an
// user tries to open a protected file in a pervasive computing domain,
// the system can check whether the network is secure or insecure", and
// "when a user moves from one location to another, external events can
// trigger rules that activate/deactivate roles".
//
// A ward nurse can hold her role only while her badge reports the ward
// and the network probe reports a secure segment; walking out revokes
// the role mid-session, automatically.
//
// Run with:
//
//	go run ./examples/pervasive
package main

import (
	"fmt"
	"log"
	"time"

	"activerbac"
)

const wardPolicy = `
policy "pervasive-ward"
role WardNurse
role Visitor

permission WardNurse: read chart.dat
permission Visitor: read map.txt

user nina: WardNurse, Visitor

context WardNurse requires location = ward
context WardNurse requires network = secure
`

func main() {
	sys, err := activerbac.Open(wardPolicy, &activerbac.Options{
		Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	sid, err := sys.CreateSession("nina")
	if err != nil {
		log.Fatal(err)
	}
	chart := activerbac.Permission{Operation: "read", Object: "chart.dat"}

	fmt.Println("— context gates activation —")
	fmt.Printf("no sensors yet: activate WardNurse -> %v\n",
		sys.AddActiveRole("nina", sid, "WardNurse"))

	// The badge reader and the network probe report in (external
	// events through the context-update rule).
	must(sys.SetContext("location", "ward"))
	must(sys.SetContext("network", "secure"))
	fmt.Printf("badge=ward, network=secure: activate WardNurse -> %v\n",
		errOrOK(sys.AddActiveRole("nina", sid, "WardNurse")))
	fmt.Printf("chart access: %v\n\n", sys.CheckAccess(sid, chart))

	// The visitor role has no context constraints.
	must(sys.AddActiveRole("nina", sid, "Visitor"))

	fmt.Println("— context change revokes mid-session —")
	must(sys.SetContext("location", "cafeteria"))
	roles, _ := sys.SessionRoles(sid)
	fmt.Printf("nina walked to the cafeteria: active roles = %v (WardNurse revoked)\n", roles)
	fmt.Printf("chart access: %v\n\n", sys.CheckAccess(sid, chart))

	fmt.Println("— insecure network is just as fatal —")
	must(sys.SetContext("location", "ward"))
	must(sys.AddActiveRole("nina", sid, "WardNurse"))
	must(sys.SetContext("network", "insecure"))
	roles, _ = sys.SessionRoles(sid)
	fmt.Printf("network flagged insecure: active roles = %v\n", roles)
	fmt.Printf("chart access: %v\n", sys.CheckAccess(sid, chart))
}

func errOrOK(err error) string {
	if err != nil {
		return err.Error()
	}
	return "ok"
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
