// Quickstart: the paper's enterprise XYZ (Section 5, Figure 1) end to
// end — load the policy, inspect the generated rules, create sessions,
// activate roles, check access, and watch static SoD (including its
// inheritance up the hierarchy) deny the conflicting requests.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"activerbac"
)

// The policy of Figure 1: purchase and approval departments with
// hierarchies PM > PC > Clerk and AM > AC > Clerk, and static SoD
// between the purchase and approval clerks.
const xyzPolicy = `
policy "enterprise-xyz"
role PM      # purchase manager
role PC      # purchase clerk
role AM      # approval manager
role AC      # approval clerk
role Clerk

hierarchy PM > PC > Clerk
hierarchy AM > AC > Clerk

ssd purchase-approval 2: PC, AC

permission PC: write purchase-order.dat
permission AC: approve purchase-order.dat
permission Clerk: read lobby.txt

user bob: PC
user carol: AC
user alice: PM

cardinality PM 1
`

func main() {
	sys, err := activerbac.Open(xyzPolicy, &activerbac.Options{
		Clock: activerbac.NewSimClock(time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Printf("loaded %q: %d generated OWTE rules\n\n", "enterprise-xyz", len(sys.Rules()))

	// Bob the purchase clerk writes a purchase order.
	sid, err := sys.CreateSession("bob")
	if err != nil {
		log.Fatal(err)
	}
	must(sys.AddActiveRole("bob", sid, "PC"))
	show(sys, sid, "bob", "write", "purchase-order.dat")
	show(sys, sid, "bob", "read", "lobby.txt") // inherited from Clerk
	show(sys, sid, "bob", "approve", "purchase-order.dat")

	// Alice the purchase manager can act as PC through the hierarchy.
	aliceSid, err := sys.CreateSession("alice")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddActiveRole("alice", aliceSid, "PC"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalice (PM) activated PC through the role hierarchy")

	// Static SoD: bob (PC) cannot also take the approval clerk role —
	// and alice (PM) cannot take AM, because PM inherits PC's conflict.
	fmt.Println("\nseparation of duty:")
	for _, attempt := range []struct {
		user activerbac.UserID
		role activerbac.RoleID
	}{{"bob", "AC"}, {"alice", "AM"}} {
		err := sys.AssignUser(attempt.user, attempt.role)
		fmt.Printf("  assign %s -> %s: %v\n", attempt.user, attempt.role, err)
	}

	// Cardinality: only one PM can be active at a time.
	must(sys.AddActiveRole("alice", aliceSid, "PM"))
	must(sys.AddUser("dave"))
	must(sys.AssignUser("dave", "PM"))
	daveSid, err := sys.CreateSession("dave")
	if err != nil {
		log.Fatal(err)
	}
	err = sys.AddActiveRole("dave", daveSid, "PM")
	fmt.Printf("\ncardinality (PM max 1): second activation -> %v\n", err)

	st := sys.Stats()
	fmt.Printf("\nengine: %d rules, %d events, %d detections, %d denials recorded\n",
		st.Rules, st.Events, st.Detections, st.Denials)
}

func show(sys *activerbac.System, sid activerbac.SessionID, user, op, obj string) {
	ok := sys.CheckAccess(sid, activerbac.Permission{Operation: op, Object: obj})
	verdict := "DENIED"
	if ok {
		verdict = "allowed"
	}
	fmt.Printf("  %s: %s(%s) -> %s\n", user, op, obj, verdict)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
