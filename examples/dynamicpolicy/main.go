// Dynamic policy: the paper's Section 5 manageability story. The
// administrator edits the high-level specification — the day-doctor
// shift moves from 8-16 to 9-17, a new Intern role appears under Clerk
// — and the engine regenerates exactly the affected rules while
// sessions stay live. The report shows how little was touched, which is
// the whole point versus hand-maintained low-level rules.
//
// Run with:
//
//	go run ./examples/dynamicpolicy
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"activerbac"
)

const v1 = `
policy "hospital"
role ChiefDoctor
role DayDoctor
role Clerk
hierarchy ChiefDoctor > DayDoctor > Clerk
permission Clerk: read board.txt
user dana: DayDoctor
shift DayDoctor 08:00:00-16:00:00
`

func main() {
	day := func(h, m int) time.Time { return time.Date(2026, 7, 6, h, m, 0, 0, time.UTC) }
	sim := activerbac.NewSimClock(day(8, 30))
	sys, err := activerbac.Open(v1, &activerbac.Options{Clock: sim})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Printf("v1 loaded: %d rules\n", len(sys.Rules()))
	sid, err := sys.CreateSession("dana")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddActiveRole("dana", sid, "DayDoctor"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[%s] dana active under the 8-16 shift\n\n", sim.Now().Format("15:04"))

	// Change 1: move the shift (the paper's exact example).
	v2 := strings.Replace(v1, "shift DayDoctor 08:00:00-16:00:00",
		"shift DayDoctor 09:00:00-17:00:00", 1)
	rep, err := sys.ApplyPolicy(v2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shift change applied: %s\n", rep)
	fmt.Printf("  roles regenerated: %v (out of 3 in the enterprise)\n", rep.RolesRegenerated)

	// The session survived, and the new window governs.
	sim.AdvanceTo(day(16, 30))
	ok := sys.CheckAccess(sid, activerbac.Permission{Operation: "read", Object: "board.txt"})
	fmt.Printf("[%s] dana still in session, board access = %v (old shift would have ended at 16:00)\n",
		sim.Now().Format("15:04"), ok)
	fmt.Printf("[%s] DayDoctor enabled = %v\n\n", sim.Now().Format("15:04"), sys.RoleEnabled("DayDoctor"))

	// Change 2: a new Intern role under Clerk, with a duration bound.
	v3 := v2 + "role Intern\nhierarchy Clerk > Intern\nuser ivy: Intern\nduration * Intern 4h\n"
	rep, err = sys.ApplyPolicy(v3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intern role added: %s\n", rep)
	ivySid, err := sys.CreateSession("ivy")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddActiveRole("ivy", ivySid, "Intern"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ivy activated the brand-new Intern role through freshly generated rules")

	// Change 3: a bad edit is rejected atomically by the consistency
	// checker — the running system is untouched.
	bad := v3 + "hierarchy Intern > ChiefDoctor\n" // cycle
	if _, err := sys.ApplyPolicy(bad); err != nil {
		fmt.Printf("\nbad edit rejected by the consistency checker:\n  %v\n", err)
	}
	fmt.Printf("engine still serving: %d rules, invariants clean = %v\n",
		len(sys.Rules()), len(sys.CheckInvariants()) == 0)
}
