package activerbac_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"activerbac"
)

// TestAnalyzePolicyFlagsConflict: the analyzer catches the
// common-ancestor SSoD conflict the statement checker accepts, and the
// findings carry the stable greppable rendering.
func TestAnalyzePolicyFlagsConflict(t *testing.T) {
	findings, err := activerbac.AnalyzePolicy(`
policy "conflict"
role CEO
role PC
role AC
hierarchy CEO > PC
hierarchy CEO > AC
ssd purchase 2: PC, AC
`, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !activerbac.HasAnalysisErrors(findings) {
		t.Fatalf("conflict policy produced no error findings: %v", findings)
	}
	found := false
	for _, f := range findings {
		if f.Code == "RV001" && f.Subject == "ssd:purchase" {
			found = true
			if !strings.HasPrefix(f.String(), "RV001 error ssd:purchase: ") {
				t.Errorf("finding rendering = %q", f.String())
			}
		}
	}
	if !found {
		t.Fatalf("no RV001 finding: %v", findings)
	}
}

// TestAnalyzePolicyInconsistent: a policy the checker rejects still
// analyzes — one RV000 error per checker error, instead of failing.
func TestAnalyzePolicyInconsistent(t *testing.T) {
	findings, err := activerbac.AnalyzePolicy("policy \"dup\"\nrole A\nrole A\n", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !activerbac.HasAnalysisErrors(findings) {
		t.Fatal("inconsistent policy produced no findings")
	}
	for _, f := range findings {
		if f.Code == "RV000" {
			return
		}
	}
	t.Fatalf("no RV000 finding: %v", findings)
}

// TestSystemAnalyzeCleanAndCounted: a live system self-analyzes; the
// xyz seed policy is clean, and findings feed the metrics counter.
func TestSystemAnalyzeCleanAndCounted(t *testing.T) {
	sys, err := activerbac.Open(xyzPolicy, &activerbac.Options{
		Clock: activerbac.NewSimClock(t0), Metrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if fs := sys.Analyze(); activerbac.HasAnalysisErrors(fs) {
		t.Fatalf("xyz policy has error findings: %v", fs)
	}

	// A system running a conflicted-but-loadable policy reports the
	// finding and bumps activerbac_analyze_findings_total{code,severity}.
	conflicted, err := activerbac.Open(`
policy "conflict"
role CEO
role PC
role AC
hierarchy CEO > PC
hierarchy CEO > AC
ssd purchase 2: PC, AC
`, &activerbac.Options{Clock: activerbac.NewSimClock(t0), Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer conflicted.Close()
	fs := conflicted.Analyze()
	if !activerbac.HasAnalysisErrors(fs) {
		t.Fatalf("live analyze missed the conflict: %v", fs)
	}
	var sb strings.Builder
	if err := conflicted.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `activerbac_analyze_findings_total{code="RV001",severity="error"}`) {
		t.Error("metrics page missing the analyze findings counter")
	}
}

// TestRegenerationIdempotent: re-applying the unchanged policy must
// regenerate nothing — same rule set, zero pool mutations, identical
// analysis findings (paper §6: regeneration touches only changed
// roles; an unchanged spec touches none).
func TestRegenerationIdempotent(t *testing.T) {
	sys := openXYZ(t)
	defer sys.Close()

	before := sys.Rules()
	findingsBefore := sys.Analyze()

	rep, err := sys.ApplyPolicy(xyzPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Touched() != 0 || rep.RulesAdded != 0 || rep.RulesRemoved != 0 ||
		len(rep.UsersAdded) != 0 || len(rep.UsersRemoved) != 0 {
		t.Fatalf("unchanged policy regenerated something: %+v", rep)
	}

	after := sys.Rules()
	if len(after) != len(before) {
		t.Fatalf("rule count changed: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Name != after[i].Name || before[i].On != after[i].On ||
			before[i].Priority != after[i].Priority || before[i].Enabled != after[i].Enabled {
			t.Errorf("rule %d changed: %+v -> %+v", i, before[i], after[i])
		}
	}

	findingsAfter := sys.Analyze()
	if len(findingsAfter) != len(findingsBefore) {
		t.Fatalf("reapply changed findings: %v -> %v", findingsBefore, findingsAfter)
	}
	for i := range findingsBefore {
		if findingsBefore[i] != findingsAfter[i] {
			t.Errorf("finding %d changed: %v -> %v", i, findingsBefore[i], findingsAfter[i])
		}
	}
}

// TestExamplePoliciesAnalyzeClean sweeps every policy shipped in the
// repo — the backquoted policy literals embedded in examples/*/main.go
// and the parser's golden testdata — and asserts the analyzer accepts
// them all with zero error-severity findings.
func TestExamplePoliciesAnalyzeClean(t *testing.T) {
	for _, src := range collectRepoPolicies(t) {
		findings, err := activerbac.AnalyzePolicy(src.text, time.Time{})
		if err != nil {
			t.Errorf("%s: %v", src.origin, err)
			continue
		}
		for _, f := range findings {
			if f.Severity == activerbac.AnalysisError {
				t.Errorf("%s: %v", src.origin, f)
			}
		}
	}
}

type policySource struct {
	origin string
	text   string
}

// collectRepoPolicies extracts every policy literal from the example
// programs (string literals containing a `policy "..."` header) plus
// the .acp files under internal/policy/testdata.
func collectRepoPolicies(t *testing.T) []policySource {
	t.Helper()
	var out []policySource

	mains, err := filepath.Glob("examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range mains {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			text, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.Contains(text, "policy \"") {
				return true
			}
			pos := fset.Position(lit.Pos())
			out = append(out, policySource{
				origin: pos.Filename + ":" + strconv.Itoa(pos.Line),
				text:   text,
			})
			return true
		})
	}

	acps, err := filepath.Glob(filepath.Join("internal", "policy", "testdata", "*.acp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range acps {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, policySource{origin: path, text: string(data)})
	}

	if len(out) < 5 {
		t.Fatalf("expected several repo policies, found %d", len(out))
	}
	return out
}
